//! Reproduces Fig. 3(d): average relative error on marginal workloads over the
//! census-like and adult-like datasets, sweeping ε, for Fourier, DataCube and
//! the Eigen-Design strategy (selected on the unit-norm scaled workload).

use mm_bench::report::fmt;
use mm_bench::runs::eigen_strategy_for;
use mm_bench::{ExperimentTable, RunConfig};
use mm_core::PrivacyParams;
use mm_data::relative_error::{average_relative_error, RelativeErrorOptions};
use mm_data::synthetic::{synthetic_histogram, SyntheticDataset};
use mm_strategies::datacube::datacube_strategy;
use mm_strategies::fourier::fourier_strategy;
use mm_strategies::Strategy;
use mm_workload::marginal::{MarginalKind, MarginalWorkload};
use mm_workload::Domain;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn datasets(cfg: &RunConfig) -> Vec<SyntheticDataset> {
    if cfg.paper_scale {
        vec![
            mm_data::census_like(cfg.seed),
            mm_data::adult_like(cfg.seed),
        ]
    } else {
        vec![
            SyntheticDataset {
                name: "census-like (quick 8x8x8)".to_string(),
                data: synthetic_histogram(&Domain::new(&[8, 8, 8]), 1_500_000.0, 1.1, 4, cfg.seed),
            },
            SyntheticDataset {
                name: "adult-like (quick 4x8x4x2)".to_string(),
                data: synthetic_histogram(&Domain::new(&[4, 8, 4, 2]), 33_000.0, 1.0, 3, cfg.seed),
            },
        ]
    }
}

fn main() {
    let cfg = RunConfig::from_args();
    let epsilons = [0.1, 0.5, 1.0, 2.5];
    let mut table = ExperimentTable::new(
        "Fig. 3(d) — average relative error on marginal workloads",
        &[
            "dataset",
            "workload",
            "epsilon",
            "Fourier",
            "DataCube",
            "Eigen Design",
        ],
    );

    for ds in datasets(&cfg) {
        let domain = ds.data.domain().clone();
        // 2-way marginals.
        let two_way = MarginalWorkload::all_k_way(domain.clone(), 2, MarginalKind::Point);
        let two_way_norm =
            MarginalWorkload::all_k_way(domain.clone(), 2, MarginalKind::Point).into_normalized();
        run(
            &mut table,
            &cfg,
            &ds,
            "2-way marginal",
            &two_way,
            &two_way_norm,
            &epsilons,
        );

        // Random marginals.
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let count = (domain.num_attributes() * 2).min((1 << domain.num_attributes()) - 1);
        let random = MarginalWorkload::random(domain.clone(), count, MarginalKind::Point, &mut rng);
        let random_norm = MarginalWorkload::from_subsets(
            domain.clone(),
            random.subsets().to_vec(),
            MarginalKind::Point,
        )
        .into_normalized();
        run(
            &mut table,
            &cfg,
            &ds,
            "random marginal",
            &random,
            &random_norm,
            &epsilons,
        );
    }
    table.emit(&cfg);
    println!(
        "Expected shape (paper): Eigen Design achieves the lowest relative error,\n\
         by 1.1x-2.7x over the best of Fourier/DataCube."
    );
}

fn run(
    table: &mut ExperimentTable,
    cfg: &RunConfig,
    ds: &SyntheticDataset,
    name: &str,
    workload: &MarginalWorkload,
    normalized: &MarginalWorkload,
    epsilons: &[f64],
) {
    let fourier = fourier_strategy(workload);
    let datacube = datacube_strategy(workload);
    let eigen = eigen_strategy_for(normalized);
    for &eps in epsilons {
        let privacy = PrivacyParams::new(eps, cfg.delta);
        let opts = RelativeErrorOptions {
            trials: cfg.trials,
            floor: 1.0,
            seed: cfg.seed,
        };
        let rel = |s: &Strategy| {
            average_relative_error(workload, s, &ds.data, &privacy, &opts)
                .map(|r| r.mean)
                .unwrap_or(f64::NAN)
        };
        table.push_row(vec![
            ds.name.clone(),
            name.to_string(),
            format!("{eps}"),
            fmt(rel(&fourier)),
            fmt(rel(&datacube)),
            fmt(rel(&eigen)),
        ]);
    }
}
