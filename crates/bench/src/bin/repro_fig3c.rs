//! Reproduces Fig. 3(c): absolute (workload RMS) error on marginal workloads —
//! all 2-way marginals and random marginal unions — comparing Fourier,
//! DataCube (BMAX), the Eigen-Design strategy and the lower bound.

use mm_bench::report::fmt;
use mm_bench::runs::{eigen_strategy_for, figure3_domains, Comparison, Method};
use mm_bench::{ExperimentTable, RunConfig};
use mm_strategies::datacube::datacube_strategy;
use mm_strategies::fourier::fourier_strategy;
use mm_workload::marginal::{MarginalKind, MarginalWorkload};
use mm_workload::Workload;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let cfg = RunConfig::from_args();
    let privacy = cfg.privacy();

    let mut table = ExperimentTable::new(
        format!(
            "Fig. 3(c) — absolute error on marginal workloads ({} cells)",
            cfg.cells
        ),
        &[
            "domain",
            "workload",
            "Fourier",
            "DataCube",
            "Eigen Design",
            "Lower Bound",
            "eigen/bound",
        ],
    );

    // The paper uses the domains with at least three attributes.
    for domain in figure3_domains(cfg.cells)
        .into_iter()
        .filter(|d| d.num_attributes() >= 3)
    {
        let two_way = MarginalWorkload::all_k_way(domain.clone(), 2, MarginalKind::Point);
        run_one(
            &mut table,
            &cfg,
            &privacy,
            &domain.to_string(),
            "2-way marginal",
            &two_way,
        );

        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let count = (domain.num_attributes() * 2).min((1 << domain.num_attributes()) - 1);
        let random = MarginalWorkload::random(domain.clone(), count, MarginalKind::Point, &mut rng);
        run_one(
            &mut table,
            &cfg,
            &privacy,
            &domain.to_string(),
            "random marginal",
            &random,
        );
    }
    table.emit(&cfg);
    println!(
        "Expected shape (paper): Eigen Design error matches the lower bound on marginal\n\
         workloads and improves on Fourier/DataCube by 1.3x-2.2x."
    );
}

fn run_one(
    table: &mut ExperimentTable,
    _cfg: &RunConfig,
    privacy: &mm_core::PrivacyParams,
    domain: &str,
    name: &str,
    workload: &MarginalWorkload,
) {
    let fourier = fourier_strategy(workload);
    let datacube = datacube_strategy(workload);
    let eigen = eigen_strategy_for(workload);
    let cmp = Comparison::evaluate(
        &workload.gram(),
        workload.query_count(),
        privacy,
        &[
            Method::new("Fourier", fourier),
            Method::new("DataCube", datacube),
            Method::new("Eigen Design", eigen),
        ],
    );
    let eigen_err = cmp.error_of("Eigen Design").unwrap_or(f64::NAN);
    table.push_row(vec![
        domain.to_string(),
        name.to_string(),
        fmt(cmp.error_of("Fourier").unwrap_or(f64::NAN)),
        fmt(cmp.error_of("DataCube").unwrap_or(f64::NAN)),
        fmt(eigen_err),
        fmt(cmp.lower_bound),
        fmt(eigen_err / cmp.lower_bound),
    ]);
}
