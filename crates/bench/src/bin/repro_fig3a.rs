//! Reproduces Fig. 3(a): absolute (workload RMS) error on range workloads —
//! all range queries and random range queries — across the Fig. 3 domain
//! family, comparing Hierarchical, Wavelet, the Eigen-Design strategy and the
//! singular value lower bound.

use mm_bench::report::fmt;
use mm_bench::runs::{eigen_strategy_for, figure3_domains, Comparison, Method};
use mm_bench::{ExperimentTable, RunConfig};
use mm_strategies::hierarchical::binary_hierarchical;
use mm_strategies::wavelet::wavelet_strategy;
use mm_workload::range::{AllRangeWorkload, RandomRangeWorkload};
use mm_workload::Workload;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let cfg = RunConfig::from_args();
    let privacy = cfg.privacy();
    let random_queries = if cfg.paper_scale { 2000 } else { 500 };

    let mut table = ExperimentTable::new(
        format!(
            "Fig. 3(a) — absolute error on range workloads ({} cells)",
            cfg.cells
        ),
        &[
            "domain",
            "workload",
            "Hierarchical",
            "Wavelet",
            "Eigen Design",
            "Lower Bound",
            "eigen/bound",
        ],
    );

    for domain in figure3_domains(cfg.cells) {
        let hierarchical = binary_hierarchical(&domain);
        let wavelet = wavelet_strategy(&domain);

        // All range queries.
        let all = AllRangeWorkload::new(domain.clone());
        let eigen = eigen_strategy_for(&all);
        let cmp = Comparison::evaluate(
            &all.gram(),
            all.query_count(),
            &privacy,
            &[
                Method::new("Hierarchical", hierarchical.clone()),
                Method::new("Wavelet", wavelet.clone()),
                Method::new("Eigen Design", eigen),
            ],
        );
        push_comparison(&mut table, &domain.to_string(), "all range", &cmp);

        // Random range queries.
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let random = RandomRangeWorkload::sample(domain.clone(), random_queries, &mut rng);
        let eigen_r = eigen_strategy_for(&random);
        let cmp_r = Comparison::evaluate(
            &random.gram(),
            random.query_count(),
            &privacy,
            &[
                Method::new("Hierarchical", hierarchical),
                Method::new("Wavelet", wavelet),
                Method::new("Eigen Design", eigen_r),
            ],
        );
        push_comparison(&mut table, &domain.to_string(), "random range", &cmp_r);
    }
    table.emit(&cfg);
    println!(
        "Expected shape (paper): Eigen Design <= Wavelet/Hierarchical on every domain,\n\
         with a 1.2x-2.1x reduction and eigen/bound <= 1.3."
    );
}

fn push_comparison(table: &mut ExperimentTable, domain: &str, workload: &str, cmp: &Comparison) {
    let eigen = cmp.error_of("Eigen Design").unwrap_or(f64::NAN);
    table.push_row(vec![
        domain.to_string(),
        workload.to_string(),
        fmt(cmp.error_of("Hierarchical").unwrap_or(f64::NAN)),
        fmt(cmp.error_of("Wavelet").unwrap_or(f64::NAN)),
        fmt(eigen),
        fmt(cmp.lower_bound),
        fmt(eigen / cmp.lower_bound),
    ]);
}
