//! Cold strategy selection vs the scalar-kernel baseline — the
//! perf-trajectory bench behind `BENCH_selection.json`.
//!
//! The engine's cache-hit answer path has been measured (and gated) since
//! PR 3; this bench finally covers the *expensive* path: what a cache miss
//! costs, and how much the blocked/threaded selection kernels of this PR
//! bought over the scalar reference kernels they replaced.  Scenarios, each
//! at n ∈ {256, 512, 1024} cells (quick mode stops at 512):
//!
//! * `cholesky` — blocked right-looking [`Cholesky::new`] against the scalar
//!   reference [`Cholesky::new_scalar`] on a dense SPD gram;
//! * `eigen` — the restructured [`SymmetricEigen::new`] against
//!   [`SymmetricEigen::new_scalar`] on the all-range workload gram (the
//!   degenerate spectrum selection actually faces, which is much harder for
//!   the QL iteration than a random one);
//! * `selection_eigen_design` — the full cold miss path (Eigen-Design
//!   selection + strategy-gram factor + Prop. 4 trace term) on the new
//!   kernels against the same pipeline rebuilt on the scalar kernels,
//!   including the seed-era column-by-column trace evaluation.  This is the
//!   headline number: ≥ 4x at n = 1024;
//! * `selection_eigen_design_hit` / `selection_design_set_hit` /
//!   `selection_wavelet_hit` / `selection_workload_rows_hit` — a warm
//!   `Engine::select` against the cold miss for the eigen-design, weighted
//!   design-set (Fourier), Haar-wavelet and workload-rows selectors: the
//!   cache win on the same engine the serving path uses (workload-rows runs
//!   on the n-row prefix workload; the others on all-range);
//! * `selection_low_rank_r{16,64,256}` — the Low-Rank Mechanism's cold miss
//!   (`Engine::builder().low_rank(r)`: truncated eigendecomposition +
//!   eigen-design in the r-dimensional subspace, O(nr² + r³)) against the
//!   full dense cold miss on the same engine machinery, at n ∈ {1024, 4096}
//!   (quick mode runs n = 4096 at r ∈ {16, 64} — the gated pair).
//!
//! Environment knobs (all optional):
//!
//! * `MM_BENCH_QUICK=1` — short CI mode: fewer samples, n ≤ 512 for the
//!   kernel scenarios (the low-rank scenario still runs its gated n = 4096
//!   pair — that comparison *is* the point of the low-rank path);
//! * `MM_BENCH_JSON=PATH` — where to write `BENCH_selection.json` (default:
//!   the workspace root);
//! * `MM_BENCH_GATE=1` — exit non-zero unless (a) the blocked-parallel
//!   Cholesky beats the scalar reference at every measured n ≥ 512, and
//!   (b) the low-rank cold miss at n = 4096 beats the full dense cold miss
//!   at every gated rank r ≤ 64 (the full-path and hit ratios are recorded
//!   but not gated).

use criterion::{black_box, Criterion};
use mm_bench::report::{SelectionBenchRecord, SelectionBenchReport};
use mm_bench::runs::timed;
use mm_core::design_set::{weighted_design_strategy_with_costs, DesignWeightingOptions};
use mm_core::engine::{DesignSetSelector, Engine};
use mm_core::{eigen_design, EigenDesignOptions, PrivacyParams};
use mm_linalg::decomp::{Cholesky, SymmetricEigen};
use mm_linalg::{ops, parallel, Matrix};
use mm_strategies::Strategy;
use mm_workload::prefix::PrefixWorkload;
use mm_workload::range::AllRangeWorkload;
use mm_workload::{Domain, Workload};

struct Config {
    quick: bool,
    ns: Vec<usize>,
    /// `(n, ranks)` pairs for the low-rank scenario.  Quick mode keeps only
    /// the gated n = 4096 pair at r ≤ 64; the full run adds n = 1024 and
    /// r = 256.
    low_rank: Vec<(usize, Vec<usize>)>,
}

impl Config {
    fn from_env() -> Self {
        let quick = std::env::var("MM_BENCH_QUICK")
            .map(|v| v == "1")
            .unwrap_or(false);
        Config {
            quick,
            ns: if quick {
                vec![256, 512]
            } else {
                vec![256, 512, 1024]
            },
            low_rank: if quick {
                vec![(4096, vec![16, 64])]
            } else {
                vec![(1024, vec![16, 64, 256]), (4096, vec![16, 64, 256])]
            },
        }
    }

    /// Fixed sample count per benchmark: the scalar baselines run for tens
    /// of seconds at n = 1024, so large n takes the stable minimum of fewer
    /// samples.
    fn samples(&self, n: usize) -> usize {
        match (self.quick, n >= 1024) {
            (true, _) => 2,
            (false, true) => 2,
            (false, false) => 3,
        }
    }
}

/// The dense, well-conditioned SPD system of the batch bench: gram of a dense
/// matrix plus a strong diagonal, so the factor has no zero entries to skip.
fn spd_gram(n: usize) -> Matrix {
    let b = Matrix::from_fn(n, n, |i, j| ((i * 7 + j * 11) % 19) as f64 / 19.0 - 0.5);
    let mut g = ops::gram(&b);
    for i in 0..n {
        g[(i, i)] += n as f64 / 8.0;
    }
    g
}

/// The Eigen-Design selection pipeline rebuilt on the scalar reference
/// kernels: scalar eigendecomposition, the shared weighting program, a
/// scalar Cholesky of the strategy gram, and the seed-era column-by-column
/// trace evaluation.  This is exactly the work a pre-PR cache miss did.
fn scalar_miss_path(gram: &Matrix) -> f64 {
    let eig = SymmetricEigen::new_scalar(gram).expect("gram is symmetric");
    let vals: Vec<f64> = eig
        .eigenvalues()
        .iter()
        .map(|&l| if l > 0.0 { l } else { 0.0 })
        .collect();
    let sigma1 = vals.first().copied().unwrap_or(0.0);
    let retained: Vec<usize> = vals
        .iter()
        .enumerate()
        .filter(|(_, &l)| l > 1e-10 * sigma1)
        .map(|(i, _)| i)
        .collect();
    let n = gram.rows();
    let mut q = Matrix::zeros(retained.len(), n);
    for (r, &idx) in retained.iter().enumerate() {
        for c in 0..n {
            q[(r, c)] = eig.eigenvectors()[(c, idx)];
        }
    }
    let costs: Vec<f64> = retained.iter().map(|&i| vals[i]).collect();
    let strategy = weighted_design_strategy_with_costs(
        "scalar",
        &q,
        costs,
        &DesignWeightingOptions::default(),
    )
    .expect("weighting the eigen design set succeeds")
    .strategy;
    let factor = Cholesky::new_scalar(strategy.gram()).expect("strategy gram is SPD");
    // Seed-era trace term: one scalar solve per column of the identity.
    let mut total = 0.0;
    let mut e = vec![0.0; n];
    for j in 0..n {
        e.iter_mut().for_each(|v| *v = 0.0);
        e[j] = 1.0;
        let col = factor.solve_vec(&e).expect("factor dimension matches");
        let mut acc = 0.0;
        for (i, &v) in col.iter().enumerate() {
            acc += gram[(j, i)] * v;
        }
        total += acc;
    }
    total
}

/// The same miss path on the blocked/threaded kernels.
fn blocked_miss_path(gram: &Matrix) -> f64 {
    let strategy: Strategy = eigen_design(gram, &EigenDesignOptions::default())
        .expect("eigen design succeeds")
        .strategy;
    let factor = Cholesky::new(strategy.gram()).expect("strategy gram is SPD");
    factor
        .trace_of_gram_times_inverse(gram)
        .expect("gram dimension matches")
}

fn bench_kernels(c: &mut Criterion, report: &mut SelectionBenchReport, cfg: &Config, n: usize) {
    let spd = spd_gram(n);
    let workload_gram = AllRangeWorkload::new(Domain::one_dim(n)).gram();
    let mut group = c.benchmark_group(format!("selection_kernels/n={n}"));
    group.sample_size(cfg.samples(n));
    let blocked = group.bench_function_stats("cholesky/blocked", |b| {
        b.iter(|| black_box(Cholesky::new(&spd).unwrap()))
    });
    let scalar = group.bench_function_stats("cholesky/scalar", |b| {
        b.iter(|| black_box(Cholesky::new_scalar(&spd).unwrap()))
    });
    report.push(SelectionBenchRecord::new(
        "cholesky",
        n,
        blocked.min_ns(),
        scalar.min_ns(),
    ));
    let fast = group.bench_function_stats("eigen/blocked", |b| {
        b.iter(|| black_box(SymmetricEigen::new(&workload_gram).unwrap()))
    });
    let scalar = group.bench_function_stats("eigen/scalar", |b| {
        b.iter(|| black_box(SymmetricEigen::new_scalar(&workload_gram).unwrap()))
    });
    report.push(SelectionBenchRecord::new(
        "eigen",
        n,
        fast.min_ns(),
        scalar.min_ns(),
    ));
    group.finish();
}

fn bench_miss_path(c: &mut Criterion, report: &mut SelectionBenchReport, cfg: &Config, n: usize) {
    let gram = AllRangeWorkload::new(Domain::one_dim(n)).gram();
    let mut group = c.benchmark_group(format!("selection_miss/n={n}"));
    group.sample_size(cfg.samples(n));
    let optimized = group.bench_function_stats("eigen_design/blocked", |b| {
        b.iter(|| black_box(blocked_miss_path(&gram)))
    });
    let baseline = group.bench_function_stats("eigen_design/scalar", |b| {
        b.iter(|| black_box(scalar_miss_path(&gram)))
    });
    report.push(SelectionBenchRecord::new(
        "selection_eigen_design",
        n,
        optimized.min_ns(),
        baseline.min_ns(),
    ));
    group.finish();
}

fn bench_miss_vs_hit(c: &mut Criterion, report: &mut SelectionBenchReport, cfg: &Config, n: usize) {
    let workload = AllRangeWorkload::new(Domain::one_dim(n));
    let mut group = c.benchmark_group(format!("selection_cache/n={n}"));
    group.sample_size(cfg.samples(n));
    let engines = [
        (
            "selection_eigen_design_hit",
            Engine::builder()
                .privacy(PrivacyParams::paper_default())
                .build()
                .expect("default engine builds"),
        ),
        (
            "selection_design_set_hit",
            Engine::builder()
                .privacy(PrivacyParams::paper_default())
                .selector(DesignSetSelector::fourier())
                .build()
                .expect("fourier engine builds"),
        ),
        (
            "selection_wavelet_hit",
            Engine::builder()
                .privacy(PrivacyParams::paper_default())
                .selector(DesignSetSelector::wavelet())
                .build()
                .expect("wavelet engine builds"),
        ),
    ];
    for (scenario, engine) in engines {
        let label = engine.selector().name();
        let miss = group.bench_function_stats(format!("{label}/miss"), |b| {
            b.iter(|| {
                engine.clear_cache();
                black_box(engine.select(&workload).unwrap())
            })
        });
        engine.select(&workload).expect("warm the cache");
        let hit = group.bench_function_stats(format!("{label}/hit"), |b| {
            b.iter(|| black_box(engine.select(&workload).unwrap()))
        });
        report.push(SelectionBenchRecord::new(
            scenario,
            n,
            hit.min_ns(),
            miss.min_ns(),
        ));
    }
    // The workload-rows design set needs the explicit query matrix, so it
    // runs on the n-row prefix workload instead of the O(n²)-row all-range
    // one (whose materialised matrix would dwarf the selection itself).
    let prefixes = PrefixWorkload::new(n);
    let engine = Engine::builder()
        .privacy(PrivacyParams::paper_default())
        .selector(DesignSetSelector::workload_rows())
        .build()
        .expect("workload-rows engine builds");
    let label = engine.selector().name();
    let miss = group.bench_function_stats(format!("{label}/miss"), |b| {
        b.iter(|| {
            engine.clear_cache();
            black_box(engine.select(&prefixes).unwrap())
        })
    });
    engine.select(&prefixes).expect("warm the cache");
    let hit = group.bench_function_stats(format!("{label}/hit"), |b| {
        b.iter(|| black_box(engine.select(&prefixes).unwrap()))
    });
    report.push(SelectionBenchRecord::new(
        "selection_workload_rows_hit",
        n,
        hit.min_ns(),
        miss.min_ns(),
    ));
    group.finish();
}

/// The Low-Rank Mechanism's cold miss against the full dense cold miss, on
/// the same `Engine::select` machinery (gram + fingerprint + cache probe +
/// selector).  The dense baseline at n = 4096 is minutes of O(n³) work, so
/// it is measured with one timed call instead of the sampling loop — at
/// that scale a single sample is exact to within noise far smaller than the
/// orders-of-magnitude gap being recorded.
fn bench_low_rank(
    c: &mut Criterion,
    report: &mut SelectionBenchReport,
    cfg: &Config,
    n: usize,
    ranks: &[usize],
) {
    let workload = AllRangeWorkload::new(Domain::one_dim(n));
    let mut group = c.benchmark_group(format!("selection_low_rank/n={n}"));
    group.sample_size(if n >= 4096 { 1 } else { cfg.samples(n) });

    let dense_engine = Engine::builder()
        .privacy(PrivacyParams::paper_default())
        .build()
        .expect("dense engine builds");
    let dense_ns = if n >= 4096 {
        let (_, secs) = timed(|| dense_engine.select(&workload).expect("dense selection"));
        println!("selection_low_rank/n={n}/dense/miss             time: [{secs:.3} s]  (1 sample)");
        secs * 1e9
    } else {
        group
            .bench_function_stats("dense/miss", |b| {
                b.iter(|| {
                    dense_engine.clear_cache();
                    black_box(dense_engine.select(&workload).unwrap())
                })
            })
            .min_ns()
    };

    for &r in ranks {
        let engine = Engine::builder()
            .privacy(PrivacyParams::paper_default())
            .low_rank(r)
            .build()
            .expect("low-rank engine builds");
        let stats = group.bench_function_stats(format!("r={r}/miss"), |b| {
            b.iter(|| {
                engine.clear_cache();
                black_box(engine.select(&workload).unwrap())
            })
        });
        report.push(SelectionBenchRecord::new(
            format!("selection_low_rank_r{r}"),
            n,
            stats.min_ns(),
            dense_ns,
        ));
    }
    group.finish();
}

fn default_json_path() -> String {
    // Anchor on the crate manifest so the artifact lands at the workspace
    // root regardless of the invoking directory.
    format!("{}/../../BENCH_selection.json", env!("CARGO_MANIFEST_DIR"))
}

fn main() {
    let cfg = Config::from_env();
    let mut criterion = Criterion::default();
    let mut report = SelectionBenchReport::new(cfg.quick, parallel::max_threads());
    for &n in &cfg.ns {
        bench_kernels(&mut criterion, &mut report, &cfg, n);
        bench_miss_path(&mut criterion, &mut report, &cfg, n);
        bench_miss_vs_hit(&mut criterion, &mut report, &cfg, n);
    }
    for (n, ranks) in &cfg.low_rank {
        bench_low_rank(&mut criterion, &mut report, &cfg, *n, ranks);
    }

    println!("\n== speedups (baseline / optimized) ==");
    for r in &report.records {
        println!("{:<28} n={:<5} {:>10.2}x", r.scenario, r.n, r.speedup);
    }

    let path = std::env::var("MM_BENCH_JSON").unwrap_or_else(|_| default_json_path());
    match report.write(&path) {
        Ok(()) => println!("\nwrote {path}"),
        Err(e) => {
            eprintln!("failed to write {path}: {e}");
            std::process::exit(1);
        }
    }

    if std::env::var("MM_BENCH_GATE")
        .map(|v| v == "1")
        .unwrap_or(false)
    {
        // Gate only the wide-margin kernel scenario: blocked-parallel
        // Cholesky must beat the scalar reference at every measured
        // n >= 512.  The eigen and full-path margins are wider still but
        // depend on QL iteration counts, and the hit ratios are three
        // orders of magnitude — all recorded above, none load-bearing for
        // regression detection on a noisy shared runner.
        match report.gate("cholesky", 512, 1.0) {
            Ok(()) => println!("perf gate passed: blocked cholesky >= scalar at n >= 512"),
            Err(failures) => {
                eprintln!("perf gate FAILED: {failures}");
                std::process::exit(1);
            }
        }
        // The Low-Rank Mechanism's acceptance gate: a truncating rank r <= 64
        // must make cold selection at n = 4096 strictly cheaper than the
        // full dense pipeline it replaces (r = 256 is recorded but ungated —
        // its margin depends on the truncated eigensolver's iteration count).
        for r in [16u32, 64] {
            match report.gate(&format!("selection_low_rank_r{r}"), 4096, 1.0) {
                Ok(()) => {
                    println!("perf gate passed: low-rank r={r} beats full dense at n >= 4096")
                }
                Err(failures) => {
                    eprintln!("perf gate FAILED: {failures}");
                    std::process::exit(1);
                }
            }
        }
    }
}
