//! Vectorised batch answering vs. the per-vector loop — the perf-trajectory
//! bench behind `BENCH_batch.json`.
//!
//! Three scenarios, each at K ∈ {1, 8, 64, 256} right-hand sides and
//! n ∈ {256, 1024} cells:
//!
//! * `matmul` — one blocked `A·X` against K independent `A·xₖ` matvecs;
//! * `solve_multi` — one multi-RHS `L⁻ᵀ(L⁻¹ X)` sweep against K scalar
//!   Cholesky solves;
//! * `engine_answer_batch` — `Engine::answer_batch` (one cache lookup, one
//!   factor, one blocked pass) against K `Engine::answer` calls.
//!
//! Both sides of every pair answer the *same* batch, so `speedup =
//! baseline/batched` is the end-to-end win of vectorising.  The run is
//! fixed-iteration (a fixed sample count per benchmark, no wall-clock
//! targeting), which keeps the CI gate's operation count deterministic.
//!
//! Environment knobs (all optional):
//!
//! * `MM_BENCH_QUICK=1` — short CI mode: fewer samples, K ≤ 64;
//! * `MM_BENCH_JSON=PATH` — where to write `BENCH_batch.json` (default:
//!   the workspace root);
//! * `MM_BENCH_GATE=1` — exit non-zero unless every K ≥ 8 `solve_multi` /
//!   `engine_answer_batch` scenario shows `speedup >= 1.0` (the coarse CI
//!   perf-regression gate; the thin-margin raw `matmul` rows are recorded
//!   but not gated).

use criterion::{black_box, Criterion};
use mm_bench::report::{BatchBenchRecord, BatchBenchReport};
use mm_core::engine::{Engine, FixedStrategySelector};
use mm_core::PrivacyParams;
use mm_linalg::decomp::Cholesky;
use mm_linalg::{ops, Matrix};
use mm_strategies::fourier::attribute_basis;
use mm_strategies::Strategy;
use mm_workload::IdentityWorkload;
use rand::rngs::StdRng;
use rand::SeedableRng;

struct Config {
    quick: bool,
    ns: Vec<usize>,
    ks: Vec<usize>,
}

impl Config {
    fn from_env() -> Self {
        let quick = std::env::var("MM_BENCH_QUICK")
            .map(|v| v == "1")
            .unwrap_or(false);
        Config {
            quick,
            ns: vec![256, 1024],
            ks: if quick {
                vec![1, 8, 64]
            } else {
                vec![1, 8, 64, 256]
            },
        }
    }

    /// Fixed sample count per benchmark: enough to take a stable minimum,
    /// few enough that the CI job stays short at n = 1024.
    fn samples(&self, n: usize) -> usize {
        match (self.quick, n >= 1024) {
            (true, _) => 3,
            (false, true) => 5,
            (false, false) => 10,
        }
    }
}

/// A deterministic dense data matrix whose K columns are the batch's data
/// vectors (synthetic counts, same family as the repro binaries).
fn data_matrix(n: usize, k: usize) -> Matrix {
    Matrix::from_fn(n, k, |i, c| 50.0 + ((i * 13 + c * 31) % 97) as f64)
}

fn bench_matmul(c: &mut Criterion, report: &mut BatchBenchReport, cfg: &Config, n: usize) {
    let a = attribute_basis(n);
    let mut group = c.benchmark_group(format!("batch_matmul/n={n}"));
    group.sample_size(cfg.samples(n));
    for &k in &cfg.ks {
        let x = data_matrix(n, k);
        let cols: Vec<Vec<f64>> = (0..k).map(|c| x.col(c)).collect();
        let batched = group.bench_function_stats(format!("batched/K={k}"), |b| {
            b.iter(|| black_box(ops::matmul(&a, &x).unwrap()))
        });
        let baseline = group.bench_function_stats(format!("per-vector/K={k}"), |b| {
            b.iter(|| {
                for col in &cols {
                    black_box(a.matvec(col).unwrap());
                }
            })
        });
        report.push(BatchBenchRecord::new(
            "matmul",
            n,
            k,
            batched.min_ns(),
            baseline.min_ns(),
        ));
    }
    group.finish();
}

fn bench_solve_multi(c: &mut Criterion, report: &mut BatchBenchReport, cfg: &Config, n: usize) {
    // A dense, well-conditioned SPD system: gram of a dense matrix plus a
    // strong diagonal, so the factor L has no zero entries to skip.
    let b = Matrix::from_fn(n, n, |i, j| ((i * 7 + j * 11) % 19) as f64 / 19.0 - 0.5);
    let mut g = ops::gram(&b);
    for i in 0..n {
        g[(i, i)] += n as f64 / 8.0;
    }
    let ch = Cholesky::new(&g).expect("regularised gram is SPD");
    let mut group = c.benchmark_group(format!("batch_solve_multi/n={n}"));
    group.sample_size(cfg.samples(n));
    for &k in &cfg.ks {
        let x = data_matrix(n, k);
        let cols: Vec<Vec<f64>> = (0..k).map(|c| x.col(c)).collect();
        let batched = group.bench_function_stats(format!("batched/K={k}"), |b| {
            b.iter(|| {
                let y = ch.solve_lower_multi(&x).unwrap();
                black_box(ch.solve_upper_multi(&y).unwrap())
            })
        });
        let baseline = group.bench_function_stats(format!("per-vector/K={k}"), |b| {
            b.iter(|| {
                for col in &cols {
                    black_box(ch.solve_vec(col).unwrap());
                }
            })
        });
        report.push(BatchBenchRecord::new(
            "solve_multi",
            n,
            k,
            batched.min_ns(),
            baseline.min_ns(),
        ));
    }
    group.finish();
}

fn bench_engine(c: &mut Criterion, report: &mut BatchBenchReport, cfg: &Config, n: usize) {
    // A dense orthonormal strategy behind a fixed selector: selection is
    // free, so the timings isolate the answering pipeline the batch path
    // vectorises (cache lookup, A·X, noise, AᵀY, triangular solves).
    let strategy = Strategy::from_matrix("dct", attribute_basis(n));
    let workload = IdentityWorkload::new(n);
    let engine = Engine::builder()
        .privacy(PrivacyParams::paper_default())
        .selector(FixedStrategySelector::new(strategy))
        .build()
        .expect("gaussian backend matches paper-default privacy");
    let mut warm_rng = StdRng::seed_from_u64(1);
    let warm = data_matrix(n, 1).col(0);
    engine
        .answer(&workload, &warm, &mut warm_rng)
        .expect("warm-up answer");
    let mut group = c.benchmark_group(format!("batch_engine/n={n}"));
    group.sample_size(cfg.samples(n));
    for &k in &cfg.ks {
        let x = data_matrix(n, k);
        let cols: Vec<Vec<f64>> = (0..k).map(|c| x.col(c)).collect();
        let mut rng = StdRng::seed_from_u64(2);
        let batched = group.bench_function_stats(format!("batched/K={k}"), |b| {
            b.iter(|| black_box(engine.answer_batch(&workload, &cols, &mut rng).unwrap()))
        });
        let mut rng = StdRng::seed_from_u64(2);
        let baseline = group.bench_function_stats(format!("per-vector/K={k}"), |b| {
            b.iter(|| {
                for col in &cols {
                    black_box(engine.answer(&workload, col, &mut rng).unwrap());
                }
            })
        });
        report.push(BatchBenchRecord::new(
            "engine_answer_batch",
            n,
            k,
            batched.min_ns(),
            baseline.min_ns(),
        ));
    }
    group.finish();
}

fn default_json_path() -> String {
    // Anchor on the crate manifest so the artifact lands at the workspace
    // root regardless of the invoking directory.
    format!("{}/../../BENCH_batch.json", env!("CARGO_MANIFEST_DIR"))
}

fn main() {
    let cfg = Config::from_env();
    let mut criterion = Criterion::default();
    let mut report = BatchBenchReport::new(cfg.quick);
    for &n in &cfg.ns {
        bench_matmul(&mut criterion, &mut report, &cfg, n);
        bench_solve_multi(&mut criterion, &mut report, &cfg, n);
        bench_engine(&mut criterion, &mut report, &cfg, n);
    }

    println!("\n== speedups (baseline / batched) ==");
    for r in &report.records {
        println!(
            "{:<22} n={:<5} K={:<4} {:>8.2}x",
            r.scenario, r.n, r.k, r.speedup
        );
    }

    let path = std::env::var("MM_BENCH_JSON").unwrap_or_else(|_| default_json_path());
    match report.write(&path) {
        Ok(()) => println!("\nwrote {path}"),
        Err(e) => {
            eprintln!("failed to write {path}: {e}");
            std::process::exit(1);
        }
    }

    if std::env::var("MM_BENCH_GATE")
        .map(|v| v == "1")
        .unwrap_or(false)
    {
        // Gate only the scenarios with a wide margin (5-15x for the engine,
        // 2-10x for the solves): the raw matmul's K >= 8 edge is ~1.5x,
        // thin enough that a noisy shared CI runner could trip a coarse
        // >= 1.0x check without any code regression.  It is still measured
        // and recorded in the JSON above.
        let gated = BatchBenchReport {
            quick: report.quick,
            records: report
                .records
                .iter()
                .filter(|r| r.scenario != "matmul")
                .cloned()
                .collect(),
        };
        match gated.gate(8, 1.0) {
            Ok(()) => println!("perf gate passed: batched >= per-vector at K >= 8"),
            Err(failures) => {
                eprintln!("perf gate FAILED: {failures}");
                std::process::exit(1);
            }
        }
    }
}
