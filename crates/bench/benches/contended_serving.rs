//! Contended multi-threaded serving throughput for the `Engine`.
//!
//! Three scenarios, printed as a small report (this bench has a custom main,
//! so `cargo bench -p mm-bench --bench contended_serving` runs it directly):
//!
//! 1. **Mixed traffic, K threads.** K ∈ {1, 2, 4, 8} threads share one
//!    `Arc<Engine>` and answer a mixed working set of range workloads
//!    (n ∈ {32, 48, 64, 96}) chosen uniformly at random per call.  Reported:
//!    wall-clock throughput (answers/s) and the engine's hit/miss/selection
//!    counters.  With the sharded single-flight cache, the selector runs
//!    once per distinct workload *in total* — not once per thread — and the
//!    hit ratio approaches 1 as the trial lengthens.
//!
//! 2. **Cold-start stampede.** K threads race on one cold workload.
//!    Single-flight selection means exactly one selection runs while the
//!    other K−1 threads wait and share the leader's result.
//!
//! 3. **Hot workload under cold churn.** One hot workload is served between
//!    a stream of distinct cold workloads through a cache smaller than the
//!    stream.  LRU eviction keeps the hot entry resident (one selection for
//!    its lifetime); the FIFO policy this replaced re-selected it every
//!    `capacity` cold arrivals.

use mm_core::engine::Engine;
use mm_core::PrivacyParams;
use mm_workload::range::AllRangeWorkload;
use mm_workload::{Domain, Workload};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::{Arc, Barrier};
use std::time::Instant;

const MIXED_SIZES: [usize; 4] = [32, 48, 64, 96];
const ANSWERS_PER_THREAD: usize = 200;

fn mixed_traffic(threads: usize) {
    let engine = Arc::new(
        Engine::builder()
            .privacy(PrivacyParams::paper_default())
            .cache_capacity(64)
            .build()
            .unwrap(),
    );
    let workloads: Arc<Vec<AllRangeWorkload>> = Arc::new(
        MIXED_SIZES
            .iter()
            .map(|&n| AllRangeWorkload::new(Domain::one_dim(n)))
            .collect(),
    );
    let barrier = Arc::new(Barrier::new(threads + 1));
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let engine = Arc::clone(&engine);
            let workloads = Arc::clone(&workloads);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let mut rng = StdRng::seed_from_u64(0xC0FFEE + t as u64);
                barrier.wait();
                for _ in 0..ANSWERS_PER_THREAD {
                    let w = &workloads[rng.gen_range(0..workloads.len())];
                    let x: Vec<f64> = (0..w.dim()).map(|i| 10.0 + (i % 7) as f64).collect();
                    engine.answer(w, &x, &mut rng).unwrap();
                }
            })
        })
        .collect();
    barrier.wait();
    let start = Instant::now();
    for h in handles {
        h.join().unwrap();
    }
    let elapsed = start.elapsed();
    let stats = engine.stats();
    let total = (threads * ANSWERS_PER_THREAD) as f64;
    let hit_ratio = stats.cache_hits as f64 / (stats.cache_hits + stats.cache_misses) as f64;
    println!(
        "mixed_traffic/{threads} threads: {:>8.0} answers/s  \
         (hits {} / misses {} / selections {}, hit ratio {:.3})",
        total / elapsed.as_secs_f64(),
        stats.cache_hits,
        stats.cache_misses,
        stats.selections,
        hit_ratio,
    );
    assert!(
        stats.selections == MIXED_SIZES.len() as u64,
        "single-flight: one selection per distinct workload, got {}",
        stats.selections
    );
}

fn cold_start_stampede(threads: usize) {
    let n = 256;
    let engine = Arc::new(Engine::new(PrivacyParams::paper_default()));
    let workload = Arc::new(AllRangeWorkload::new(Domain::one_dim(n)));
    let barrier = Arc::new(Barrier::new(threads + 1));
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let engine = Arc::clone(&engine);
            let workload = Arc::clone(&workload);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let mut rng = StdRng::seed_from_u64(7 + t as u64);
                let x: Vec<f64> = vec![3.0; n];
                barrier.wait();
                engine.answer(workload.as_ref(), &x, &mut rng).unwrap();
            })
        })
        .collect();
    barrier.wait();
    let start = Instant::now();
    for h in handles {
        h.join().unwrap();
    }
    let elapsed = start.elapsed();
    let stats = engine.stats();
    println!(
        "cold_stampede/{threads} threads on one n={n} workload: {:.2?}  \
         (selections {}, waiters served from the in-flight selection: {})",
        elapsed, stats.selections, stats.cache_hits,
    );
    assert_eq!(stats.selections, 1, "stampede must run one selection");
}

fn hot_under_cold_churn() {
    let engine = Engine::builder()
        .privacy(PrivacyParams::paper_default())
        .cache_capacity(8)
        .cache_shards(1)
        .build()
        .unwrap();
    let hot = AllRangeWorkload::new(Domain::one_dim(64));
    let mut rng = StdRng::seed_from_u64(99);
    let x_hot: Vec<f64> = vec![5.0; 64];
    engine.answer(&hot, &x_hot, &mut rng).unwrap();

    let cold_sizes: Vec<usize> = (8..48).collect();
    let start = Instant::now();
    for &n in &cold_sizes {
        engine.answer(&hot, &x_hot, &mut rng).unwrap();
        let cold = AllRangeWorkload::new(Domain::one_dim(n));
        let x: Vec<f64> = vec![1.0; n];
        engine.answer(&cold, &x, &mut rng).unwrap();
    }
    let elapsed = start.elapsed();
    let stats = engine.stats();
    println!(
        "hot_under_churn: {} cold workloads through a capacity-8 LRU cache in {:.2?}  \
         (selections {} = 1 hot + {} cold; hot workload never re-selected)",
        cold_sizes.len(),
        elapsed,
        stats.selections,
        cold_sizes.len(),
    );
    assert_eq!(
        stats.selections,
        1 + cold_sizes.len() as u64,
        "LRU must keep the hot workload resident"
    );
}

fn main() {
    println!("\n== contended_serving ==");
    for &threads in &[1usize, 2, 4, 8] {
        mixed_traffic(threads);
    }
    for &threads in &[4usize, 8] {
        cold_start_stampede(threads);
    }
    hot_under_cold_churn();
}
