//! Matrix-free structured answering at large domains — the perf-trajectory
//! bench behind `BENCH_large_domain.json`.
//!
//! The dense engine path tops out where its n×n gram and eigensolve stop
//! fitting the time/memory budget (n ≈ 2–4k).  The structured path selects a
//! tree strategy in O(n), observes through the run-length operator, and
//! reconstructs with CG on the normal equations — no materialised matrix
//! anywhere — so range workloads at n = 65 536 answer in well under a
//! second.  Two scenarios per domain size, answering the same deterministic
//! interval workload:
//!
//! * `structured` — selection via [`TreeStructuredSelector`] plus one
//!   end-to-end [`Engine::answer_structured`] (noise, CG reconstruction,
//!   interval-operator evaluation) on a warm engine;
//! * `dense` — the same answer pipeline fed by the *materialised* strategy
//!   operator ([`ExplicitOperator`], which routes through the blocked
//!   `ops::matmul` kernels): densification as the setup cost, dense matvecs
//!   inside CG.  Above the operator's materialisation cap the scenario is
//!   recorded as skipped — that cliff is the point of the bench.
//!
//! Both scenarios share the interval-operator workload evaluation, so the
//! measured difference is the strategy-side cost: O(n log n) run-length
//! applies against O(n²) dense matvecs.
//!
//! Environment knobs (all optional):
//!
//! * `MM_BENCH_QUICK=1` — short CI mode: fewer samples, fewer sizes (the
//!   headline n = 65 536 still runs — it is seconds, not minutes);
//! * `MM_BENCH_JSON=PATH` — where to write `BENCH_large_domain.json`
//!   (default: the workspace root);
//! * `MM_BENCH_GATE=1` — exit non-zero unless structured end-to-end beats
//!   dense at every measured n >= 4096 and completes n = 65 536.

use criterion::{black_box, Criterion};
use mm_bench::report::{LargeDomainRecord, LargeDomainReport};
use mm_core::engine::{Engine, StructuredSelector, TreeStructuredSelector};
use mm_core::PrivacyParams;
use mm_linalg::{parallel, ExplicitOperator, LinearOperator};
use mm_opt::{cg_normal_equations, CgOptions};
use mm_workload::{RangeQueryWorkload, StructuredWorkload};
use rand::rngs::StdRng;
use rand::SeedableRng;

struct Config {
    quick: bool,
    ns: Vec<usize>,
}

impl Config {
    fn from_env() -> Self {
        let quick = std::env::var("MM_BENCH_QUICK")
            .map(|v| v == "1")
            .unwrap_or(false);
        Config {
            quick,
            ns: if quick {
                vec![1024, 4096, 65536]
            } else {
                vec![1024, 4096, 8192, 16384, 65536]
            },
        }
    }

    /// Fixed sample count per benchmark: the dense baseline runs for ~a
    /// second per answer at n = 4096, so everything takes the stable
    /// minimum of a few samples.
    fn samples(&self, n: usize) -> usize {
        match (self.quick, n >= 16384) {
            (true, _) => 2,
            (false, true) => 2,
            (false, false) => 3,
        }
    }
}

/// A deterministic spread of range queries over `[0, n)`: pseudo-random
/// placement via a fixed multiplicative hash (no RNG, so every run and
/// every thread count sees the same workload).
fn intervals(n: usize, m: usize) -> Vec<(usize, usize)> {
    (0..m)
        .map(|i| {
            let lo = (i.wrapping_mul(2_654_435_761)) % n;
            let width = 1 + (i.wrapping_mul(40_503)) % (n / 2).max(1);
            (lo, (lo + width - 1).min(n - 1))
        })
        .collect()
}

/// Deterministic synthetic histogram (same shape the examples use).
fn data(n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| 50.0 + ((i * 13) % 97) as f64 * 3.0)
        .collect()
}

fn bench_domain(c: &mut Criterion, report: &mut LargeDomainReport, cfg: &Config, n: usize) {
    let m = n.min(1024);
    let workload = RangeQueryWorkload::from_intervals(n, intervals(n, m));
    let descriptor = workload.descriptor();
    let x = data(n);
    let mut group = c.benchmark_group(format!("large_domain/n={n}"));
    group.sample_size(cfg.samples(n));

    // Structured: cold selection is stateless and O(n); answering runs on a
    // warm engine so the timing is the per-request serving cost.
    let selector = TreeStructuredSelector::default();
    let select = group.bench_function_stats("structured/select", |b| {
        b.iter(|| black_box(selector.select(&descriptor).unwrap()))
    });
    let engine = Engine::builder()
        .privacy(PrivacyParams::paper_default())
        .build()
        .expect("default engine builds");
    let (strategy, _, _) = engine
        .select_structured(&descriptor)
        .expect("structured selection succeeds");
    let mut rng = StdRng::seed_from_u64(0x4C44 ^ n as u64);
    let answer = group.bench_function_stats("structured/answer", |b| {
        b.iter(|| black_box(engine.answer_structured(&workload, &x, &mut rng).unwrap()))
    });
    report.push(LargeDomainRecord::measured(
        "structured",
        n,
        m,
        select.min_ns(),
        answer.min_ns(),
    ));

    // Dense baseline: materialise the same strategy operator and push the
    // identical pipeline (noise, CG, interval evaluation) through dense
    // matvecs.  Past the materialisation cap the scenario cannot run.
    let op = strategy.operator().clone();
    if op.materialize().is_none() {
        println!(
            "large_domain/n={n}/dense: skipped (operator above the \
             materialisation cap)"
        );
        report.push(LargeDomainRecord::skipped("dense", n, m));
        group.finish();
        return;
    }
    let densify = group.bench_function_stats("dense/materialize", |b| {
        b.iter(|| black_box(op.materialize().unwrap()))
    });
    let dense = ExplicitOperator::new(op.materialize().expect("within the cap"));
    let wop = workload.operator();
    let sens = engine
        .backend()
        .sensitivity_from_norms(strategy.l2_sensitivity(), strategy.l1_sensitivity());
    let scale = engine.backend().noise_scale(engine.privacy(), sens);
    let rows = op.dims().0;
    let opts = CgOptions::default();
    let mut rng = StdRng::seed_from_u64(0x4C44 ^ n as u64);
    let answer = group.bench_function_stats("dense/answer", |b| {
        b.iter(|| {
            let mut y = dense.apply(&x);
            let noise = engine.backend().sample(&mut rng, scale, rows);
            for (v, nz) in y.iter_mut().zip(noise.iter()) {
                *v += *nz;
            }
            let estimate =
                cg_normal_equations(|v| dense.apply(v), |w| dense.apply_transpose(w), &y, &opts)
                    .expect("dense CG converges");
            black_box(wop.apply(&estimate))
        })
    });
    report.push(LargeDomainRecord::measured(
        "dense",
        n,
        m,
        densify.min_ns(),
        answer.min_ns(),
    ));
    group.finish();
}

fn default_json_path() -> String {
    // Anchor on the crate manifest so the artifact lands at the workspace
    // root regardless of the invoking directory.
    format!(
        "{}/../../BENCH_large_domain.json",
        env!("CARGO_MANIFEST_DIR")
    )
}

fn main() {
    let cfg = Config::from_env();
    let mut criterion = Criterion::default();
    let mut report = LargeDomainReport::new(cfg.quick, parallel::max_threads());
    for &n in &cfg.ns {
        bench_domain(&mut criterion, &mut report, &cfg, n);
    }

    println!("\n== end-to-end (select + answer) ==");
    for r in &report.records {
        if r.skipped {
            println!("{:<12} n={:<6} skipped", r.scenario, r.n);
        } else {
            println!("{:<12} n={:<6} {:>12.0} ns", r.scenario, r.n, r.total_ns());
        }
    }

    let path = std::env::var("MM_BENCH_JSON").unwrap_or_else(|_| default_json_path());
    match report.write(&path) {
        Ok(()) => println!("\nwrote {path}"),
        Err(e) => {
            eprintln!("failed to write {path}: {e}");
            std::process::exit(1);
        }
    }

    if std::env::var("MM_BENCH_GATE")
        .map(|v| v == "1")
        .unwrap_or(false)
    {
        // Two load-bearing claims: the matrix-free path must beat the
        // materialised baseline once the domain is large (n >= 4096), and
        // it must actually complete the headline n = 65 536 — the size the
        // dense path cannot reach at all.
        match report.gate(4096, 65536) {
            Ok(()) => println!(
                "perf gate passed: structured >= dense at n >= 4096, \
                 n = 65536 completed"
            ),
            Err(failures) => {
                eprintln!("perf gate FAILED: {failures}");
                std::process::exit(1);
            }
        }
    }
}
