//! Cached vs. uncached `Engine::answer` latency on `AllRangeWorkload` at
//! n ∈ {64, 256, 1024} — the perf-trajectory baseline for the serving engine.
//!
//! "Uncached" clears the strategy cache before every call, so each answer
//! pays for Eigen-Design selection, gram factorization and the Prop. 4 trace
//! term (all O(n³) or worse).  "Cached" reuses the engine's cache entry, so
//! each answer pays only the O(n²) mechanism run.  At n = 1024 the gap is
//! roughly three orders of magnitude.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mm_core::engine::Engine;
use mm_core::PrivacyParams;
use mm_workload::range::AllRangeWorkload;
use mm_workload::Domain;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_engine_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_answer_all_ranges");
    for &n in &[64usize, 256, 1024] {
        let workload = AllRangeWorkload::new(Domain::one_dim(n));
        let x: Vec<f64> = (0..n).map(|i| 50.0 + (i % 13) as f64 * 3.0).collect();

        // Selection dominates the uncached path; keep its sample count low at
        // the largest size (one uncached answer at n = 1024 runs ~20 s).
        group.sample_size(if n >= 1024 { 2 } else { 5 });
        group.bench_with_input(BenchmarkId::new("uncached", n), &n, |b, _| {
            let engine = Engine::new(PrivacyParams::paper_default());
            let mut rng = StdRng::seed_from_u64(1);
            b.iter(|| {
                engine.clear_cache();
                engine.answer(&workload, &x, &mut rng).unwrap()
            });
        });

        group.sample_size(10);
        group.bench_with_input(BenchmarkId::new("cached", n), &n, |b, _| {
            let engine = Engine::new(PrivacyParams::paper_default());
            let mut rng = StdRng::seed_from_u64(1);
            // Warm the cache, then measure pure cache-hit answers.
            engine.answer(&workload, &x, &mut rng).unwrap();
            b.iter(|| engine.answer(&workload, &x, &mut rng).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_engine_cache);
criterion_main!(benches);
