//! The serving-tier soak bench behind `BENCH_serving.json` — the
//! perf-trajectory record for `mm-serve`.
//!
//! Two scenario families:
//!
//! * `cold_start` / `warm_start` — the persistent-store restart figure.
//!   Both time a fresh engine process's *first* `select` (build the engine,
//!   warm from the store directory, answer the first request).  `cold_start`
//!   runs against an empty store (the selection actually runs, then spills);
//!   `warm_start` against the store the cold run populated (the selection is
//!   decoded and `Cholesky::from_factor`-rebuilt, never recomputed).  The
//!   warm/cold p50 ratio at n = 1024 is the gated number: restarting with a
//!   store must be ≥ 5x faster than recomputing.
//!
//! * `soak_cold` / `soak_warm` — K concurrent async clients driving a
//!   `ServeEngine` through a Zipfian workload mix (a few hot fingerprints, a
//!   long-ish tail), every request a hand-rolled future, all clients
//!   multiplexed on one `join_all`.  `soak_cold` starts with an empty cache
//!   — misses pile onto in-flight selections; `soak_warm` replays a fresh
//!   plan against the warmed tier.  Recorded as per-request p50/p99.
//!
//! Environment knobs (all optional):
//!
//! * `MM_BENCH_QUICK=1` — short CI mode: fewer iterations and requests (the
//!   restart scenarios still reach n = 1024 — the gate needs them);
//! * `MM_BENCH_JSON=PATH` — where to write `BENCH_serving.json` (default:
//!   the workspace root);
//! * `MM_BENCH_GATE=1` — exit non-zero unless the warm restart beats the
//!   cold restart by ≥ 5x at n = 1024.

use mm_bench::report::{ServingBenchRecord, ServingBenchReport};
use mm_core::engine::Engine;
use mm_core::PrivacyParams;
use mm_serve::{block_on, join_all, AnswerFuture, ServeEngine};
use mm_workload::range::AllRangeWorkload;
use mm_workload::{Domain, Workload};
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};
use std::future::Future;
use std::path::PathBuf;
use std::pin::Pin;
use std::sync::Arc;
use std::task::{Context, Poll};
use std::time::Instant;

const SERVE_WORKERS: usize = 2;

struct Config {
    quick: bool,
    /// Domain sizes for the restart scenarios (always includes 1024: the
    /// gate is anchored there).
    start_ns: Vec<usize>,
    /// Fresh-process iterations per restart scenario.
    start_iters: usize,
    /// Concurrent soak clients.
    clients: usize,
    /// Requests per soak client.
    requests_per_client: usize,
}

impl Config {
    fn from_env() -> Self {
        let quick = std::env::var("MM_BENCH_QUICK")
            .map(|v| v == "1")
            .unwrap_or(false);
        Config {
            quick,
            start_ns: if quick { vec![1024] } else { vec![512, 1024] },
            start_iters: if quick { 2 } else { 3 },
            clients: 8,
            requests_per_client: if quick { 8 } else { 64 },
        }
    }
}

/// A scratch store directory under the target-adjacent temp dir, removed on
/// drop so repeated runs start clean.
struct ScratchDir(PathBuf);

impl ScratchDir {
    fn new(tag: &str) -> Self {
        let dir =
            std::env::temp_dir().join(format!("mm-serving-soak-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create scratch store dir");
        ScratchDir(dir)
    }

    fn clear(&self) {
        for entry in std::fs::read_dir(&self.0)
            .expect("read scratch dir")
            .flatten()
        {
            let _ = std::fs::remove_file(entry.path());
        }
    }
}

impl Drop for ScratchDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// One fresh-process first answer: build an engine over the store directory
/// (warming the cache from whatever the store holds) and run the first
/// selection.  Returns the elapsed nanoseconds.
fn first_answer_ns(store: &ScratchDir, workload: &AllRangeWorkload) -> f64 {
    let started = Instant::now();
    let engine = Engine::builder()
        .privacy(PrivacyParams::paper_default())
        .strategy_store(&store.0)
        .build()
        .expect("engine with store builds");
    engine.select(workload).expect("selection succeeds");
    started.elapsed().as_nanos() as f64
}

fn bench_restart(report: &mut ServingBenchReport, cfg: &Config, n: usize) {
    let workload = AllRangeWorkload::new(Domain::one_dim(n));
    let store = ScratchDir::new(&format!("restart-{n}"));

    let mut cold = Vec::with_capacity(cfg.start_iters);
    for _ in 0..cfg.start_iters {
        store.clear();
        cold.push(first_answer_ns(&store, &workload));
    }
    // The last cold iteration left the store populated: every warm
    // iteration is a genuine restart against it.
    let mut warm = Vec::with_capacity(cfg.start_iters * 3);
    for _ in 0..cfg.start_iters * 3 {
        warm.push(first_answer_ns(&store, &workload));
    }
    report.push(ServingBenchRecord::from_latencies(
        "cold_start",
        n,
        1,
        &cold,
    ));
    report.push(ServingBenchRecord::from_latencies(
        "warm_start",
        n,
        1,
        &warm,
    ));
}

/// A soak client: answers its request plan sequentially, recording the
/// latency of each served answer.  Plain hand-rolled future — `join_all`
/// multiplexes all clients on the bench thread.
struct Client<'a> {
    serve: &'a ServeEngine,
    /// Remaining requests, popped from the back.
    plan: Vec<(Arc<AllRangeWorkload>, Vec<f64>, u64)>,
    current: Option<(AnswerFuture<AllRangeWorkload>, Instant)>,
    latencies: Vec<f64>,
}

impl Future for Client<'_> {
    type Output = Vec<f64>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Vec<f64>> {
        let this = self.get_mut();
        loop {
            if this.current.is_none() {
                match this.plan.pop() {
                    Some((workload, x, seed)) => {
                        let fut = this.serve.answer(workload, x, seed);
                        this.current = Some((fut, Instant::now()));
                    }
                    None => return Poll::Ready(std::mem::take(&mut this.latencies)),
                }
            }
            let (fut, started) = this.current.as_mut().expect("request in flight");
            match Pin::new(fut).poll(cx) {
                Poll::Ready(result) => {
                    result.expect("served answer succeeds");
                    this.latencies.push(started.elapsed().as_nanos() as f64);
                    this.current = None;
                }
                Poll::Pending => return Poll::Pending,
            }
        }
    }
}

/// The Zipfian workload mix: rank r is drawn with weight 1/(r+1), so a few
/// domains are hot and the rest form the tail of distinct fingerprints.
fn zipf_plan(
    workloads: &[Arc<AllRangeWorkload>],
    requests: usize,
    rng: &mut StdRng,
) -> Vec<(Arc<AllRangeWorkload>, Vec<f64>, u64)> {
    let weights: Vec<f64> = (0..workloads.len()).map(|r| 1.0 / (r + 1) as f64).collect();
    let total: f64 = weights.iter().sum();
    (0..requests)
        .map(|_| {
            let mut draw = rng.gen::<f64>() * total;
            let mut rank = 0;
            for (i, w) in weights.iter().enumerate() {
                if draw < *w {
                    rank = i;
                    break;
                }
                draw -= w;
                rank = i;
            }
            let workload = workloads[rank].clone();
            let n = workload.dim();
            let x: Vec<f64> = (0..n).map(|i| 100.0 + i as f64).collect();
            (workload, x, rng.next_u64())
        })
        .collect()
}

fn run_soak(
    serve: &ServeEngine,
    workloads: &[Arc<AllRangeWorkload>],
    cfg: &Config,
    seed: u64,
) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let clients: Vec<Client<'_>> = (0..cfg.clients)
        .map(|_| Client {
            serve,
            plan: zipf_plan(workloads, cfg.requests_per_client, &mut rng),
            current: None,
            latencies: Vec::with_capacity(cfg.requests_per_client),
        })
        .collect();
    block_on(join_all(clients)).into_iter().flatten().collect()
}

fn bench_soak(report: &mut ServingBenchReport, cfg: &Config) {
    // Distinct domain sizes => distinct fingerprints; small enough that the
    // soak measures serving overhead and contention, not eigensolves.
    let workloads: Vec<Arc<AllRangeWorkload>> = (0..8)
        .map(|i| Arc::new(AllRangeWorkload::new(Domain::one_dim(48 + 4 * i))))
        .collect();
    let n = workloads[0].dim();
    let engine = Arc::new(
        Engine::builder()
            .privacy(PrivacyParams::paper_default())
            .build()
            .expect("soak engine builds"),
    );
    let serve = ServeEngine::builder(engine).workers(SERVE_WORKERS).build();

    let cold = run_soak(&serve, &workloads, cfg, 1);
    report.push(ServingBenchRecord::from_latencies(
        "soak_cold",
        n,
        cfg.clients,
        &cold,
    ));
    let warm = run_soak(&serve, &workloads, cfg, 2);
    report.push(ServingBenchRecord::from_latencies(
        "soak_warm",
        n,
        cfg.clients,
        &warm,
    ));
    let stats = serve.stats();
    println!(
        "soak: {} submitted, {} completed, {} selection jobs ({} distinct workloads)",
        stats.submitted,
        stats.completed,
        stats.selection_jobs,
        workloads.len()
    );
    assert_eq!(
        stats.selection_jobs,
        workloads.len() as u64,
        "every distinct fingerprint selects exactly once across the soak"
    );
}

fn default_json_path() -> String {
    // Anchor on the crate manifest so the artifact lands at the workspace
    // root regardless of the invoking directory.
    format!("{}/../../BENCH_serving.json", env!("CARGO_MANIFEST_DIR"))
}

fn main() {
    let cfg = Config::from_env();
    let mut report = ServingBenchReport::new(cfg.quick, SERVE_WORKERS);

    for &n in &cfg.start_ns {
        bench_restart(&mut report, &cfg, n);
    }
    bench_soak(&mut report, &cfg);

    println!("\n== serving latencies ==");
    for r in &report.records {
        println!(
            "{:<12} n={:<5} clients={:<3} requests={:<5} p50={:>12.0}ns p99={:>12.0}ns",
            r.scenario, r.n, r.clients, r.requests, r.p50_ns, r.p99_ns
        );
    }

    let path = std::env::var("MM_BENCH_JSON").unwrap_or_else(|_| default_json_path());
    match report.write(&path) {
        Ok(()) => println!("\nwrote {path}"),
        Err(e) => {
            eprintln!("failed to write {path}: {e}");
            std::process::exit(1);
        }
    }

    if std::env::var("MM_BENCH_GATE")
        .map(|v| v == "1")
        .unwrap_or(false)
    {
        // The store exists to make restarts cheap: decoding a persisted
        // selection must be far cheaper than recomputing it.  The margin is
        // enormous (the cold path is an O(n³) eigensolve), so 5x is a
        // conservative floor even on a noisy shared runner.
        match report.gate_warm_restart(1024, 5.0) {
            Ok(()) => println!("perf gate passed: warm restart >= 5x cold at n >= 1024"),
            Err(failures) => {
                eprintln!("perf gate FAILED: {failures}");
                std::process::exit(1);
            }
        }
    }
}
