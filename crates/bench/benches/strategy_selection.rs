//! Criterion benchmarks of strategy selection: the full Eigen-Design algorithm
//! and the two Sec. 4 performance optimizations (the Fig. 4 trade-off, in
//! timing form, at bench-friendly sizes).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mm_core::principal::{principal_vectors, PrincipalOptions};
use mm_core::separation::{eigen_separation, SeparationOptions};
use mm_core::{eigen_design, EigenDesignOptions};
use mm_workload::range::AllRangeWorkload;
use mm_workload::{Domain, Workload};

fn bench_eigen_design(c: &mut Criterion) {
    let mut group = c.benchmark_group("eigen_design_all_ranges");
    group.sample_size(10);
    for &n in &[32usize, 64, 128] {
        let gram = AllRangeWorkload::new(Domain::one_dim(n)).gram();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| eigen_design(&gram, &EigenDesignOptions::fast()).unwrap());
        });
    }
    group.finish();
}

fn bench_separation(c: &mut Criterion) {
    let mut group = c.benchmark_group("eigen_separation_all_ranges_128");
    group.sample_size(10);
    let gram = AllRangeWorkload::new(Domain::one_dim(128)).gram();
    for &group_size in &[8usize, 32, 128] {
        group.bench_with_input(
            BenchmarkId::from_parameter(group_size),
            &group_size,
            |bench, _| {
                bench.iter(|| {
                    eigen_separation(&gram, &SeparationOptions::with_group_size(group_size))
                        .unwrap()
                });
            },
        );
    }
    group.finish();
}

fn bench_principal(c: &mut Criterion) {
    let mut group = c.benchmark_group("principal_vectors_all_ranges_128");
    group.sample_size(10);
    let gram = AllRangeWorkload::new(Domain::one_dim(128)).gram();
    for &count in &[8usize, 16, 32] {
        group.bench_with_input(BenchmarkId::from_parameter(count), &count, |bench, _| {
            bench.iter(|| {
                principal_vectors(&gram, &PrincipalOptions::with_principal_count(count)).unwrap()
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_eigen_design,
    bench_separation,
    bench_principal
);
criterion_main!(benches);
