//! Criterion micro-benchmarks for the linear algebra substrate: the operations
//! that dominate strategy selection (matrix products, Cholesky solves and the
//! symmetric eigendecomposition of the workload gram matrix).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mm_linalg::decomp::{Cholesky, SymmetricEigen};
use mm_linalg::{ops, Matrix};

fn test_matrix(n: usize, seed: u64) -> Matrix {
    Matrix::from_fn(n, n, |i, j| {
        let v = (i as u64)
            .wrapping_mul(6364136223846793005)
            .wrapping_add((j as u64).wrapping_mul(1442695040888963407))
            .wrapping_add(seed);
        ((v >> 33) % 1000) as f64 / 500.0 - 1.0
    })
}

fn spd_matrix(n: usize) -> Matrix {
    let b = test_matrix(n, 7);
    let mut g = ops::gram(&b);
    for i in 0..n {
        g[(i, i)] += n as f64;
    }
    g
}

fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul");
    group.sample_size(10);
    for &n in &[64usize, 128, 256] {
        let a = test_matrix(n, 1);
        let b = test_matrix(n, 2);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| ops::matmul(&a, &b).unwrap());
        });
    }
    group.finish();
}

fn bench_cholesky(c: &mut Criterion) {
    let mut group = c.benchmark_group("cholesky");
    group.sample_size(10);
    for &n in &[64usize, 128, 256] {
        let a = spd_matrix(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| Cholesky::new(&a).unwrap());
        });
    }
    group.finish();
}

fn bench_eigen(c: &mut Criterion) {
    let mut group = c.benchmark_group("symmetric_eigen");
    group.sample_size(10);
    for &n in &[64usize, 128, 256] {
        let a = spd_matrix(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| SymmetricEigen::new(&a).unwrap());
        });
    }
    group.finish();
}

fn bench_kron(c: &mut Criterion) {
    let mut group = c.benchmark_group("kron");
    group.sample_size(10);
    let a = test_matrix(32, 3);
    let b = test_matrix(32, 4);
    group.bench_function("32x32_kron_32x32", |bench| {
        bench.iter(|| ops::kron(&a, &b));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_matmul,
    bench_cholesky,
    bench_eigen,
    bench_kron
);
criterion_main!(benches);
