//! Criterion benchmarks of running the mechanism itself: noisy strategy
//! answers plus least-squares inference (the per-database cost once a strategy
//! has been selected), and the analytic error evaluation of Prop. 4.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mm_core::error::rms_workload_error;
use mm_core::mechanism::MatrixMechanism;
use mm_core::PrivacyParams;
use mm_strategies::hierarchical::binary_hierarchical_1d;
use mm_strategies::wavelet::wavelet_1d;
use mm_workload::range::AllRangeWorkload;
use mm_workload::{Domain, Workload};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_mechanism_run(c: &mut Criterion) {
    let mut group = c.benchmark_group("matrix_mechanism_run");
    group.sample_size(10);
    for &n in &[64usize, 256, 512] {
        let strategy = wavelet_1d(n);
        let mech = MatrixMechanism::new(strategy, PrivacyParams::paper_default()).unwrap();
        let x: Vec<f64> = (0..n).map(|i| (i % 17) as f64 * 3.0).collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            let mut rng = StdRng::seed_from_u64(1);
            bench.iter(|| mech.run(&x, &mut rng).unwrap());
        });
    }
    group.finish();
}

fn bench_error_evaluation(c: &mut Criterion) {
    let mut group = c.benchmark_group("prop4_error_evaluation");
    group.sample_size(10);
    for &n in &[64usize, 128, 256] {
        let w = AllRangeWorkload::new(Domain::one_dim(n));
        let gram = w.gram();
        let m = w.query_count();
        let strategy = binary_hierarchical_1d(n);
        let privacy = PrivacyParams::paper_default();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| rms_workload_error(&gram, m, &strategy, &privacy).unwrap());
        });
    }
    group.finish();
}

fn bench_workload_gram(c: &mut Criterion) {
    let mut group = c.benchmark_group("all_range_gram_closed_form");
    group.sample_size(10);
    for &n in &[256usize, 1024, 2048] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| AllRangeWorkload::new(Domain::one_dim(n)).gram());
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_mechanism_run,
    bench_error_evaluation,
    bench_workload_gram
);
criterion_main!(benches);
