//! Ablation benchmarks called out in `DESIGN.md`: the cost of the completion
//! step, the solver choice (log-domain gradient descent vs barrier Newton) and
//! the design-set choice (eigen-queries vs the wavelet basis).

use criterion::{criterion_group, criterion_main, Criterion};
use mm_core::design_set::{weighted_design_strategy, DesignWeightingOptions};
use mm_core::{eigen_design, EigenDesignOptions};
use mm_opt::{solve_barrier_newton, solve_log_gd, BarrierOptions, GdOptions, WeightingProblem};
use mm_strategies::wavelet::haar_matrix;
use mm_workload::range::AllRangeWorkload;
use mm_workload::{Domain, Workload};

fn bench_completion(c: &mut Criterion) {
    let gram = AllRangeWorkload::new(Domain::one_dim(64)).gram();
    let mut group = c.benchmark_group("ablation_completion");
    group.sample_size(10);
    group.bench_function("with_completion", |b| {
        b.iter(|| eigen_design(&gram, &EigenDesignOptions::fast()).unwrap());
    });
    group.bench_function("without_completion", |b| {
        let opts = EigenDesignOptions {
            completion: false,
            ..EigenDesignOptions::fast()
        };
        b.iter(|| eigen_design(&gram, &opts).unwrap());
    });
    group.finish();
}

fn bench_solvers(c: &mut Criterion) {
    // A moderate weighting problem shared by both solvers.
    let w = AllRangeWorkload::new(Domain::one_dim(48));
    let gram = w.gram();
    let eig = mm_linalg::decomp::SymmetricEigen::new(&gram).unwrap();
    let q = eig.eigenvector_rows();
    let costs: Vec<f64> = eig.eigenvalues().iter().map(|&l| l.max(0.0)).collect();
    let problem = WeightingProblem::from_design_queries(&q, costs).unwrap();
    let mut group = c.benchmark_group("ablation_solver");
    group.sample_size(10);
    group.bench_function("log_domain_gd", |b| {
        b.iter(|| solve_log_gd(&problem, &GdOptions::fast()).unwrap());
    });
    group.bench_function("barrier_newton", |b| {
        b.iter(|| solve_barrier_newton(&problem, &BarrierOptions::default()).unwrap());
    });
    group.finish();
}

fn bench_design_sets(c: &mut Criterion) {
    let w = AllRangeWorkload::new(Domain::one_dim(64));
    let gram = w.gram();
    let wavelet_design = haar_matrix(64);
    let mut group = c.benchmark_group("ablation_design_set");
    group.sample_size(10);
    group.bench_function("eigen_design_set", |b| {
        b.iter(|| eigen_design(&gram, &EigenDesignOptions::fast()).unwrap());
    });
    group.bench_function("wavelet_design_set", |b| {
        let opts = DesignWeightingOptions {
            solver: GdOptions::fast(),
            completion: true,
        };
        b.iter(|| weighted_design_strategy("w", &gram, &wavelet_design, &opts).unwrap());
    });
    group.finish();
}

criterion_group!(benches, bench_completion, bench_solvers, bench_design_sets);
criterion_main!(benches);
