//! The reduced optimal query weighting problem shared by both solvers.

use crate::error::{OptError, Result};
use mm_linalg::Matrix;

/// The reduced form of Program 1:
///
/// ```text
///     minimize    Σᵢ cᵢ / uᵢ
///     subject to  B u ≤ 1,   u ≥ 0
/// ```
///
/// with `B ≥ 0` elementwise.  For design queries `Q` (one row per design
/// query, one column per cell) the constraint matrix is `B = (Q ∘ Q)ᵀ`, one
/// row per cell, so that `(B u)_j` is the squared L2 norm of column `j` of the
/// weighted strategy `diag(√u) Q`.
#[derive(Debug, Clone)]
pub struct WeightingProblem {
    costs: Vec<f64>,
    constraints: Matrix,
}

/// Solution of a [`WeightingProblem`].
#[derive(Debug, Clone)]
pub struct WeightingSolution {
    /// The optimal variables `u` (squared design-query weights), normalised so
    /// that the largest constraint value is exactly 1.
    pub u: Vec<f64>,
    /// Objective value `Σ cᵢ/uᵢ` at `u` (entries with `cᵢ = 0` contribute 0).
    pub objective: f64,
    /// Total inner iterations performed by the solver.
    pub iterations: usize,
}

impl WeightingProblem {
    /// Creates a problem from costs and a constraint matrix.
    ///
    /// `constraints` has one row per constraint and `costs.len()` columns; all
    /// entries must be nonnegative and finite.
    pub fn new(costs: Vec<f64>, constraints: Matrix) -> Result<Self> {
        if costs.is_empty() {
            return Err(OptError::InvalidProblem("no variables".into()));
        }
        if constraints.cols() != costs.len() {
            return Err(OptError::InvalidProblem(format!(
                "constraint matrix has {} columns but there are {} costs",
                constraints.cols(),
                costs.len()
            )));
        }
        if constraints.rows() == 0 {
            return Err(OptError::InvalidProblem("no constraints".into()));
        }
        if costs.iter().any(|&c| c < 0.0 || !c.is_finite()) {
            return Err(OptError::InvalidProblem(
                "costs must be nonnegative and finite".into(),
            ));
        }
        if constraints
            .as_slice()
            .iter()
            .any(|&b| b < 0.0 || !b.is_finite())
        {
            return Err(OptError::InvalidProblem(
                "constraint coefficients must be nonnegative and finite".into(),
            ));
        }
        // Every variable with a positive cost must appear in at least one
        // constraint, otherwise the optimum is unbounded (u_i -> infinity).
        // One row-major pass accumulates all column sums (the per-variable
        // column walk this replaces was a stride-n gather — the single most
        // expensive step of problem construction at serving sizes).
        let mut col_sums = vec![0.0f64; costs.len()];
        for r in 0..constraints.rows() {
            for (acc, &b) in col_sums.iter_mut().zip(constraints.row(r)) {
                *acc += b;
            }
        }
        for (i, (&c, &col_sum)) in costs.iter().zip(col_sums.iter()).enumerate() {
            if c > 0.0 && col_sum <= 0.0 {
                return Err(OptError::InvalidProblem(format!(
                    "variable {i} has positive cost but never appears in a constraint"
                )));
            }
        }
        Ok(WeightingProblem { costs, constraints })
    }

    /// Builds the problem for a design-query matrix `Q` (rows are design
    /// queries, columns are cells) and per-design-query costs.
    pub fn from_design_queries(q: &Matrix, costs: Vec<f64>) -> Result<Self> {
        if q.rows() != costs.len() {
            return Err(OptError::InvalidProblem(format!(
                "{} design queries but {} costs",
                q.rows(),
                costs.len()
            )));
        }
        // B = (Q ∘ Q)ᵀ : one constraint per cell.
        let b = Matrix::from_fn(q.cols(), q.rows(), |cell, query| {
            let v = q[(query, cell)];
            v * v
        });
        WeightingProblem::new(costs, b)
    }

    /// Number of variables.
    pub fn num_variables(&self) -> usize {
        self.costs.len()
    }

    /// Number of constraints.
    pub fn num_constraints(&self) -> usize {
        self.constraints.rows()
    }

    /// The cost vector `c`.
    pub fn costs(&self) -> &[f64] {
        &self.costs
    }

    /// The constraint matrix `B`.
    pub fn constraints(&self) -> &Matrix {
        &self.constraints
    }

    /// Objective value `Σ cᵢ/uᵢ`; entries with `cᵢ = 0` contribute nothing
    /// even when `uᵢ = 0`.
    pub fn objective(&self, u: &[f64]) -> f64 {
        assert_eq!(u.len(), self.costs.len());
        self.costs
            .iter()
            .zip(u.iter())
            .map(|(&c, &ui)| if c == 0.0 { 0.0 } else { c / ui })
            // mm-lint: allow(blessed-reduction): guarded elementwise quotient — the ascending zip fold is order-fixed, and gathering into a slice would allocate on every objective evaluation
            .sum()
    }

    /// The constraint values `B u`.
    pub fn constraint_values(&self, u: &[f64]) -> Vec<f64> {
        self.constraints
            .matvec(u)
            .expect("dimension checked at construction")
    }

    /// The largest constraint value `max_j (B u)_j`.
    pub fn max_constraint(&self, u: &[f64]) -> f64 {
        self.constraint_values(u)
            .into_iter()
            .fold(0.0_f64, f64::max)
    }

    /// Scales `u` so that the largest constraint value is exactly 1 (a no-op
    /// when all constraints are zero).
    pub fn normalize(&self, u: &[f64]) -> Vec<f64> {
        let m = self.max_constraint(u);
        if m <= 0.0 {
            return u.to_vec();
        }
        u.iter().map(|&v| v / m).collect()
    }

    /// True when `u` is (numerically) feasible: nonnegative and `B u ≤ 1 + tol`.
    pub fn is_feasible(&self, u: &[f64], tol: f64) -> bool {
        u.iter().all(|&v| v >= -tol) && self.max_constraint(u) <= 1.0 + tol
    }

    /// A feasible starting point: `u ∝ c` (the Theorem-2 weighting `λᵢ = √σᵢ`
    /// when the costs are the workload eigenvalues), scaled to saturate the
    /// sensitivity budget.  Variables with zero cost start at zero.
    pub fn initial_point(&self) -> Vec<f64> {
        let max_c = self.costs.iter().fold(0.0_f64, |m, &c| m.max(c));
        let mut u: Vec<f64> = if max_c <= 0.0 {
            vec![0.0; self.costs.len()]
        } else {
            self.costs.iter().map(|&c| c / max_c).collect()
        };
        let m = self.max_constraint(&u);
        if m > 0.0 {
            for v in &mut u {
                *v /= m;
            }
        }
        u
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mm_linalg::approx_eq;

    fn simple_problem() -> WeightingProblem {
        // Two variables sharing one constraint u1 + u2 <= 1.
        WeightingProblem::new(
            vec![4.0, 1.0],
            Matrix::from_rows(&[vec![1.0, 1.0]]).unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn construction_validation() {
        assert!(WeightingProblem::new(vec![], Matrix::zeros(1, 0)).is_err());
        assert!(WeightingProblem::new(vec![1.0], Matrix::zeros(0, 1)).is_err());
        assert!(WeightingProblem::new(vec![-1.0], Matrix::identity(1)).is_err());
        assert!(
            WeightingProblem::new(vec![1.0], Matrix::from_rows(&[vec![-0.5]]).unwrap()).is_err()
        );
        // Positive cost variable never constrained -> unbounded.
        assert!(WeightingProblem::new(
            vec![1.0, 1.0],
            Matrix::from_rows(&[vec![1.0, 0.0]]).unwrap()
        )
        .is_err());
        // Zero-cost unconstrained variable is fine.
        assert!(WeightingProblem::new(
            vec![1.0, 0.0],
            Matrix::from_rows(&[vec![1.0, 0.0]]).unwrap()
        )
        .is_ok());
    }

    #[test]
    fn objective_and_constraints() {
        let p = simple_problem();
        assert!(approx_eq(p.objective(&[0.5, 0.5]), 10.0, 1e-12));
        assert_eq!(p.max_constraint(&[0.25, 0.5]), 0.75);
        assert!(p.is_feasible(&[0.5, 0.5], 1e-12));
        assert!(!p.is_feasible(&[0.8, 0.5], 1e-12));
    }

    #[test]
    fn zero_cost_entries_do_not_blow_up_objective() {
        let p = WeightingProblem::new(
            vec![1.0, 0.0],
            Matrix::from_rows(&[vec![1.0, 1.0]]).unwrap(),
        )
        .unwrap();
        assert!(p.objective(&[0.5, 0.0]).is_finite());
    }

    #[test]
    fn normalize_saturates_constraint() {
        let p = simple_problem();
        let u = p.normalize(&[0.1, 0.3]);
        assert!(approx_eq(p.max_constraint(&u), 1.0, 1e-12));
    }

    #[test]
    fn initial_point_is_feasible() {
        let p = simple_problem();
        let u = p.initial_point();
        assert!(p.is_feasible(&u, 1e-12));
        assert!(approx_eq(p.max_constraint(&u), 1.0, 1e-12));
    }

    #[test]
    fn from_design_queries_builds_squared_constraints() {
        let q = Matrix::from_rows(&[vec![1.0, -2.0], vec![0.0, 3.0]]).unwrap();
        let p = WeightingProblem::from_design_queries(&q, vec![1.0, 1.0]).unwrap();
        // Constraint for cell 0: 1*u1 + 0*u2; for cell 1: 4*u1 + 9*u2.
        assert_eq!(p.constraints()[(0, 0)], 1.0);
        assert_eq!(p.constraints()[(1, 0)], 4.0);
        assert_eq!(p.constraints()[(1, 1)], 9.0);
        assert!(WeightingProblem::from_design_queries(&q, vec![1.0]).is_err());
    }
}
