//! # mm-opt
//!
//! Convex solvers for the *optimal query weighting* problem (Program 1 of
//! Li & Miklau, VLDB 2012).
//!
//! Program 1 is stated in the paper as a semidefinite program, but its
//! 2×2 PSD constraints `[[uᵢ, 1], [1, vᵢ]] ⪰ 0` only encode `vᵢ ≥ 1/uᵢ`
//! (with `uᵢ ≥ 0`), so at the optimum `vᵢ = 1/uᵢ` and the program reduces to
//! the smooth convex problem
//!
//! ```text
//!     minimize    Σᵢ cᵢ / uᵢ
//!     subject to  (Q ∘ Q)ᵀ u ≤ 1,   u ≥ 0
//! ```
//!
//! where `cᵢ` is the squared L2 norm of column `i` of `W Q⁺` and each
//! constraint row corresponds to one cell: the squared L2 norm of that cell's
//! column in the weighted strategy `A = diag(√u) Q` may not exceed 1 (the L2
//! sensitivity budget).  This crate provides two independent solvers for the
//! reduced problem:
//!
//! * [`gd::solve_log_gd`] — the production solver.  Substituting `u = eᵗ`
//!   makes the problem unconstrained and *provably convex* in `t` (both terms
//!   of the log objective are log-sum-exp of affine functions); the max over
//!   constraints is smoothed with an annealed p-norm and minimised with
//!   accelerated gradient descent.
//! * [`barrier::solve_barrier_newton`] — a classical log-barrier interior
//!   point method with dense Newton steps, used to cross-validate the
//!   gradient solver on small instances and available for callers that prefer
//!   it at small `n`.
//!
//! The shared problem type and solution checks live in [`weighting`], and a
//! conjugate-gradient solver for SPD systems (usable by callers that need
//! matrix-free Newton steps) in [`cg`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod barrier;
pub mod cg;
pub mod error;
pub mod gd;
pub mod weighting;

pub use barrier::{solve_barrier_newton, BarrierOptions};
pub use cg::{cg_normal_equations, conjugate_gradient, CgOptions};
pub use error::{OptError, Result};
pub use gd::{solve_log_gd, GdOptions};
pub use weighting::{WeightingProblem, WeightingSolution};
