//! Conjugate gradient solver for symmetric positive definite systems.
//!
//! Provided for callers that need matrix-free Newton or least-squares steps
//! (e.g. scaling the barrier solver to large design sets without forming the
//! dense Hessian).  The operator is supplied as a closure computing `A v`.

use crate::error::{OptError, Result};

/// Options for [`conjugate_gradient`].
#[derive(Debug, Clone)]
pub struct CgOptions {
    /// Maximum iterations (defaults to the problem dimension when 0).
    pub max_iters: usize,
    /// Relative residual tolerance.
    pub tol: f64,
}

impl Default for CgOptions {
    fn default() -> Self {
        CgOptions {
            max_iters: 0,
            tol: 1e-10,
        }
    }
}

/// Solves `A x = b` for a symmetric positive definite operator given as a
/// closure `apply(v) = A v`, starting from `x = 0`.
pub fn conjugate_gradient<F>(apply: F, b: &[f64], opts: &CgOptions) -> Result<Vec<f64>>
where
    F: Fn(&[f64]) -> Vec<f64>,
{
    let n = b.len();
    if n == 0 {
        return Err(OptError::InvalidProblem("empty right-hand side".into()));
    }
    let max_iters = if opts.max_iters == 0 {
        2 * n
    } else {
        opts.max_iters
    };
    let mut x = vec![0.0; n];
    let mut r = b.to_vec();
    let mut p = r.clone();
    // All CG inner products run through the fixed-lane kernel, so the
    // iteration trajectory is a pure function of the operator and b.
    let b_norm = mm_linalg::ops::dot(b, b).sqrt();
    if b_norm == 0.0 {
        return Ok(x);
    }
    let mut rs_old = mm_linalg::ops::dot(&r, &r);
    for _ in 0..max_iters {
        let ap = apply(&p);
        if ap.len() != n {
            return Err(OptError::InvalidProblem(
                "operator returned a vector of the wrong length".into(),
            ));
        }
        let p_ap = mm_linalg::ops::dot(&p, &ap);
        if p_ap <= 0.0 {
            return Err(OptError::InvalidProblem(
                "operator is not positive definite".into(),
            ));
        }
        let alpha = rs_old / p_ap;
        for i in 0..n {
            x[i] += alpha * p[i];
            r[i] -= alpha * ap[i];
        }
        let rs_new = mm_linalg::ops::dot(&r, &r);
        if rs_new.sqrt() <= opts.tol * b_norm {
            return Ok(x);
        }
        let beta = rs_new / rs_old;
        for i in 0..n {
            p[i] = r[i] + beta * p[i];
        }
        rs_old = rs_new;
    }
    Ok(x)
}

/// Least-squares inference through the normal equations, matrix-free:
/// solves `AᵀA x = Aᵀ y` by conjugate gradient given only the actions
/// `apply(v) = A·v` and `apply_transpose(w) = Aᵀ·w`.
///
/// This is the structured serving path's replacement for the dense
/// `L⁻ᵀ(L⁻¹(Aᵀy))` Cholesky sweep: no gram matrix, no factor — O(apply)
/// memory.  For the strategy families it serves (Haar, hierarchies) the
/// gram spectrum has only O(log n) distinct eigenvalues, so CG converges in
/// a few dozen iterations regardless of n.  Requires `A` to have full
/// column rank (`AᵀA` positive definite); rank-deficient operators surface
/// as the [`conjugate_gradient`] "not positive definite" error.
pub fn cg_normal_equations<A, At>(
    apply: A,
    apply_transpose: At,
    y: &[f64],
    opts: &CgOptions,
) -> Result<Vec<f64>>
where
    A: Fn(&[f64]) -> Vec<f64>,
    At: Fn(&[f64]) -> Vec<f64>,
{
    let b = apply_transpose(y);
    conjugate_gradient(|v| apply_transpose(&apply(v)), &b, opts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mm_linalg::{approx_eq, Matrix};

    #[test]
    fn solves_small_spd_system() {
        let a = Matrix::from_rows(&[vec![4.0, 1.0], vec![1.0, 3.0]]).unwrap();
        let b = vec![1.0, 2.0];
        let x = conjugate_gradient(|v| a.matvec(v).unwrap(), &b, &CgOptions::default()).unwrap();
        // Exact solution: x = (1/11, 7/11).
        assert!(approx_eq(x[0], 1.0 / 11.0, 1e-8));
        assert!(approx_eq(x[1], 7.0 / 11.0, 1e-8));
    }

    #[test]
    fn solves_larger_diagonally_dominant_system() {
        let n = 40;
        let a = Matrix::from_fn(n, n, |i, j| {
            if i == j {
                10.0
            } else {
                1.0 / ((i as f64 - j as f64).abs() + 1.0)
            }
        });
        let x_true: Vec<f64> = (0..n).map(|i| ((i % 7) as f64) - 3.0).collect();
        let b = a.matvec(&x_true).unwrap();
        let x = conjugate_gradient(|v| a.matvec(v).unwrap(), &b, &CgOptions::default()).unwrap();
        for (xi, ti) in x.iter().zip(x_true.iter()) {
            assert!(approx_eq(*xi, *ti, 1e-6));
        }
    }

    #[test]
    fn zero_rhs_returns_zero() {
        let a = Matrix::identity(3);
        let x =
            conjugate_gradient(|v| a.matvec(v).unwrap(), &[0.0; 3], &CgOptions::default()).unwrap();
        assert_eq!(x, vec![0.0; 3]);
    }

    #[test]
    fn indefinite_operator_rejected() {
        let a = Matrix::from_diag(&[-1.0, 1.0]);
        let res = conjugate_gradient(|v| a.matvec(v).unwrap(), &[1.0, 0.0], &CgOptions::default());
        assert!(res.is_err());
    }

    #[test]
    fn empty_rhs_rejected() {
        let res = conjugate_gradient(|v| v.to_vec(), &[], &CgOptions::default());
        assert!(res.is_err());
    }

    #[test]
    fn normal_equations_recover_least_squares_solution() {
        // Overdetermined consistent system: A x = y exactly.
        let a = Matrix::from_rows(&[
            vec![1.0, 0.0],
            vec![0.0, 1.0],
            vec![1.0, 1.0],
            vec![1.0, -1.0],
        ])
        .unwrap();
        let x_true = vec![2.5, -1.25];
        let y = a.matvec(&x_true).unwrap();
        let x = cg_normal_equations(
            |v| a.matvec(v).unwrap(),
            |w| a.transpose().matvec(w).unwrap(),
            &y,
            &CgOptions::default(),
        )
        .unwrap();
        for (xi, ti) in x.iter().zip(x_true.iter()) {
            assert!(approx_eq(*xi, *ti, 1e-8));
        }
    }

    #[test]
    fn normal_equations_handle_rank_deficiency_gracefully() {
        // Two identical columns: AᵀA is singular, but the right-hand side
        // Aᵀy always lies in its range, so CG still converges — to *a*
        // least-squares solution satisfying the normal equations.
        let a = Matrix::from_rows(&[vec![1.0, 1.0], vec![2.0, 2.0], vec![3.0, 3.0]]).unwrap();
        let y = vec![1.0, 0.0, 1.0];
        let x = cg_normal_equations(
            |v| a.matvec(v).unwrap(),
            |w| a.transpose().matvec(w).unwrap(),
            &y,
            &CgOptions::default(),
        )
        .unwrap();
        let at = a.transpose();
        let residual = at.matvec(&a.matvec(&x).unwrap()).unwrap();
        let rhs = at.matvec(&y).unwrap();
        for (r, b) in residual.iter().zip(rhs.iter()) {
            assert!(approx_eq(*r, *b, 1e-8), "normal equations violated");
        }
    }
}
