//! Log-domain accelerated gradient solver for the query weighting problem.
//!
//! Substituting `u = eᵗ` turns the constrained problem
//! `min Σ cᵢ/uᵢ s.t. Bu ≤ 1` into the unconstrained, *scale-invariant*
//! problem of minimising
//!
//! ```text
//!     g(t) = log( Σᵢ cᵢ e^{-tᵢ} ) + log( maxⱼ Σᵢ B_{ji} e^{tᵢ} )
//! ```
//!
//! (adding a constant to `t` leaves `g` unchanged; the final iterate is
//! rescaled so that the largest constraint is exactly 1).  Both terms are
//! log-sum-exp compositions of affine functions of `t`, so `g` is convex.
//! The max over constraints is smoothed by the p-norm
//! `maxⱼ sⱼ ≈ (Σⱼ sⱼᵖ)^{1/p}` with an annealed exponent, and each stage is
//! minimised by Nesterov-accelerated gradient descent with Armijo
//! backtracking.

use crate::error::{OptError, Result};
use crate::weighting::{WeightingProblem, WeightingSolution};

/// Options for [`solve_log_gd`].
#[derive(Debug, Clone)]
pub struct GdOptions {
    /// Maximum iterations per smoothing stage.
    pub max_iters_per_stage: usize,
    /// Relative objective-improvement tolerance used for early stopping.
    pub tol: f64,
    /// Smoothing exponents (annealing schedule); larger = closer to the true max.
    pub p_schedule: Vec<f64>,
    /// Initial step size for the backtracking line search.
    pub initial_step: f64,
}

impl Default for GdOptions {
    fn default() -> Self {
        GdOptions {
            max_iters_per_stage: 400,
            tol: 1e-10,
            p_schedule: vec![16.0, 64.0, 256.0, 1024.0, 4096.0],
            initial_step: 0.5,
        }
    }
}

impl GdOptions {
    /// A cheaper configuration used by the performance-optimised strategy
    /// selection variants (eigen-query separation, principal vectors).
    pub fn fast() -> Self {
        GdOptions {
            max_iters_per_stage: 150,
            tol: 1e-8,
            p_schedule: vec![32.0, 256.0, 2048.0],
            initial_step: 0.5,
        }
    }
}

/// Internal state for evaluating the smoothed objective and its gradient.
///
/// The constraint columns of the active (positive-cost) variables are
/// compacted into a dedicated matrix up front, so the O(#constraints ×
/// #variables) inner loops of [`Smoothed::eval`] — the bulk of every solver
/// iteration — run over contiguous slices (vectorisable dot/axpy) instead of
/// gathering through an index list.  The iteration order is unchanged.
struct Smoothed<'a> {
    problem: &'a WeightingProblem,
    /// Indices of variables with strictly positive cost (the active variables).
    active: Vec<usize>,
    /// Constraint matrix restricted to the active columns (one row per
    /// constraint, one column per active variable).
    b_active: mm_linalg::Matrix,
    p: f64,
}

impl<'a> Smoothed<'a> {
    fn new(problem: &'a WeightingProblem, p: f64) -> Self {
        let active: Vec<usize> = problem
            .costs()
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0.0)
            .map(|(i, _)| i)
            .collect();
        let b = problem.constraints();
        let b_active =
            mm_linalg::Matrix::from_fn(b.rows(), active.len(), |j, idx| b[(j, active[idx])]);
        Smoothed {
            problem,
            active,
            b_active,
            p,
        }
    }

    /// Number of active variables.
    fn len(&self) -> usize {
        self.active.len()
    }

    /// Evaluates the smoothed objective and gradient at `t` (indexed over the
    /// active variables).  Returns `(value, gradient)`.
    fn eval(&self, t: &[f64]) -> (f64, Vec<f64>) {
        let costs = self.problem.costs();
        let k = self.len();
        debug_assert_eq!(t.len(), k);

        // --- Term 1: log Σ c_i e^{-t_i} (stable log-sum-exp). ---
        let mut max_a = f64::NEG_INFINITY;
        let mut a = vec![0.0; k];
        for (idx, &i) in self.active.iter().enumerate() {
            a[idx] = costs[i].ln() - t[idx];
            if a[idx] > max_a {
                max_a = a[idx];
            }
        }
        let a_exp: Vec<f64> = a.iter().map(|&v| (v - max_a).exp()).collect();
        let sum_exp_a = mm_linalg::ops::sum(&a_exp);
        let term1 = max_a + sum_exp_a.ln();
        // Gradient of term1 wrt t_idx: -softmax(a)_idx.
        let mut grad = vec![0.0; k];
        for idx in 0..k {
            grad[idx] = -(a_exp[idx] / sum_exp_a);
        }

        // --- Term 2: (1/p) log Σ_j s_j^p with s_j = Σ_i B_{ji} u_i. ---
        let u: Vec<f64> = t.iter().map(|&ti| ti.exp()).collect();
        let n_constraints = self.b_active.rows();
        let mut log_s = vec![f64::NEG_INFINITY; n_constraints];
        let mut s = vec![0.0; n_constraints];
        for j in 0..n_constraints {
            let acc = mm_linalg::ops::dot(self.b_active.row(j), &u);
            s[j] = acc;
            log_s[j] = if acc > 0.0 {
                acc.ln()
            } else {
                f64::NEG_INFINITY
            };
        }
        let max_ls = log_s.iter().fold(f64::NEG_INFINITY, |m, &v| m.max(v));
        if !max_ls.is_finite() {
            // All constraints are zero — cannot happen for validated problems
            // with at least one active variable, but guard anyway.
            return (term1, grad);
        }
        // w_j = s_j^p / Σ s_j^p, computed stably in the log domain.
        let mut weights = vec![0.0; n_constraints];
        let mut denom = 0.0;
        for j in 0..n_constraints {
            if log_s[j].is_finite() {
                let w = (self.p * (log_s[j] - max_ls)).exp();
                weights[j] = w;
                denom += w;
            }
        }
        let term2 = max_ls + denom.ln() / self.p;
        // Gradient of term2 wrt t_idx: u_idx * Σ_j w_j B_{j,i} / s_j
        // (normalised weights), accumulated as one axpy per constraint row;
        // the u_idx factor is applied once at the end.
        let mut bsum = vec![0.0; k];
        for j in 0..n_constraints {
            let wj = weights[j] / denom;
            if wj == 0.0 || s[j] == 0.0 {
                continue;
            }
            let row = self.b_active.row(j);
            let coeff = wj / s[j];
            for (acc, &bv) in bsum.iter_mut().zip(row.iter()) {
                *acc += coeff * bv;
            }
        }
        for ((g, &bs), &uv) in grad.iter_mut().zip(bsum.iter()).zip(u.iter()) {
            *g += bs * uv;
        }

        (term1 + term2, grad)
    }
}

/// Solves the weighting problem with the log-domain accelerated gradient
/// method described in the module documentation.
pub fn solve_log_gd(problem: &WeightingProblem, opts: &GdOptions) -> Result<WeightingSolution> {
    let costs = problem.costs();
    let k_total = costs.len();

    // Degenerate case: no positive costs — the zero solution is optimal.
    if costs.iter().all(|&c| c == 0.0) {
        return Ok(WeightingSolution {
            u: vec![0.0; k_total],
            objective: 0.0,
            iterations: 0,
        });
    }
    if opts.p_schedule.is_empty() || opts.p_schedule.iter().any(|&p| p < 1.0) {
        return Err(OptError::InvalidProblem(
            "p_schedule must be non-empty with entries >= 1".into(),
        ));
    }

    // Work in the log domain over the active (positive-cost) variables only.
    let init_u_full = problem.initial_point();
    let active: Vec<usize> = costs
        .iter()
        .enumerate()
        .filter(|(_, &c)| c > 0.0)
        .map(|(i, _)| i)
        .collect();
    let mut t: Vec<f64> = active
        .iter()
        .map(|&i| init_u_full[i].max(1e-12).ln())
        .collect();

    let mut total_iters = 0usize;

    for &p in &opts.p_schedule {
        let smoothed = Smoothed::new(problem, p);
        let (mut f_prev, mut grad) = smoothed.eval(&t);
        let mut step = opts.initial_step;
        // Nesterov momentum state.
        let mut t_prev = t.clone();
        let mut momentum = 0.0_f64;

        for _iter in 0..opts.max_iters_per_stage {
            total_iters += 1;
            // Momentum extrapolation.
            let y: Vec<f64> = t
                .iter()
                .zip(t_prev.iter())
                .map(|(&cur, &prev)| cur + momentum * (cur - prev))
                .collect();
            let (fy, gy) = smoothed.eval(&y);

            // Backtracking line search from the extrapolated point.
            let mut accepted = false;
            let mut f_new = fy;
            let mut t_new = y.clone();
            let grad_norm_sq = mm_linalg::ops::dot(&gy, &gy);
            let mut local_step = step;
            for _ in 0..60 {
                let candidate: Vec<f64> = y
                    .iter()
                    .zip(gy.iter())
                    .map(|(&yi, &gi)| yi - local_step * gi)
                    .collect();
                let (fc, _) = smoothed.eval(&candidate);
                if fc <= fy - 0.25 * local_step * grad_norm_sq {
                    t_new = candidate;
                    f_new = fc;
                    accepted = true;
                    break;
                }
                local_step *= 0.5;
            }
            if !accepted {
                // Gradient step failed to make progress from the extrapolated
                // point; restart momentum and retry from the current iterate.
                momentum = 0.0;
                let (fc, gc) = smoothed.eval(&t);
                f_prev = fc;
                grad = gc;
                let gnorm = mm_linalg::ops::dot(&grad, &grad).sqrt();
                if gnorm < 1e-14 {
                    break;
                }
                step = (step * 0.5).max(1e-12);
                t_prev = t.clone();
                continue;
            }

            // Momentum restart when the objective does not decrease.
            if f_new > f_prev {
                momentum = 0.0;
            } else {
                momentum = (momentum * 0.9 + 0.3).min(0.95);
            }
            step = (local_step * 1.5).min(10.0);
            t_prev = t;
            t = t_new;

            let improvement = (f_prev - f_new).abs() / (1.0 + f_prev.abs());
            f_prev = f_new;
            grad = gy;
            if improvement < opts.tol {
                break;
            }
        }
        let _ = &grad;
    }

    // Map back to the full variable vector and normalise the sensitivity.
    let mut u_full = vec![0.0; k_total];
    for (idx, &i) in active.iter().enumerate() {
        u_full[i] = t[idx].exp();
    }
    let u_full = problem.normalize(&u_full);
    let objective = problem.objective(&u_full);
    if !objective.is_finite() {
        return Err(OptError::NonConvergence {
            solver: "log-domain gradient descent",
            iterations: total_iters,
        });
    }
    Ok(WeightingSolution {
        u: u_full,
        objective,
        iterations: total_iters,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mm_linalg::{approx_eq, Matrix};

    #[test]
    fn single_variable_exact() {
        // min c/u s.t. b*u <= 1  =>  u = 1/b, objective = c*b.
        let p = WeightingProblem::new(vec![3.0], Matrix::from_rows(&[vec![2.0]]).unwrap()).unwrap();
        let sol = solve_log_gd(&p, &GdOptions::default()).unwrap();
        assert!(approx_eq(sol.u[0], 0.5, 1e-6));
        assert!(approx_eq(sol.objective, 6.0, 1e-6));
    }

    #[test]
    fn two_variables_shared_budget() {
        // min c1/u1 + c2/u2 s.t. u1 + u2 <= 1: optimum u_i ∝ sqrt(c_i),
        // objective (sqrt(c1) + sqrt(c2))^2.
        let p = WeightingProblem::new(
            vec![4.0, 1.0],
            Matrix::from_rows(&[vec![1.0, 1.0]]).unwrap(),
        )
        .unwrap();
        let sol = solve_log_gd(&p, &GdOptions::default()).unwrap();
        let expected_obj = (2.0_f64 + 1.0).powi(2);
        assert!(
            sol.objective <= expected_obj * 1.001,
            "objective {} should be close to optimal {expected_obj}",
            sol.objective
        );
        assert!(approx_eq(sol.u[0], 2.0 / 3.0, 1e-2));
        assert!(approx_eq(sol.u[1], 1.0 / 3.0, 1e-2));
        assert!(p.is_feasible(&sol.u, 1e-9));
    }

    #[test]
    fn identity_design_identity_costs() {
        // B = I, c = 1: each u_i = 1, objective = n.
        let n = 6;
        let p = WeightingProblem::new(vec![1.0; n], Matrix::identity(n)).unwrap();
        let sol = solve_log_gd(&p, &GdOptions::default()).unwrap();
        assert!(sol.objective <= n as f64 * 1.001);
        for &u in &sol.u {
            assert!(approx_eq(u, 1.0, 1e-3), "u = {u}");
        }
    }

    #[test]
    fn zero_cost_variables_get_zero_weight() {
        let p = WeightingProblem::new(
            vec![1.0, 0.0],
            Matrix::from_rows(&[vec![1.0, 1.0]]).unwrap(),
        )
        .unwrap();
        let sol = solve_log_gd(&p, &GdOptions::default()).unwrap();
        assert_eq!(sol.u[1], 0.0);
        assert!(approx_eq(sol.u[0], 1.0, 1e-6));
    }

    #[test]
    fn all_zero_costs_return_zero_solution() {
        let p = WeightingProblem::new(
            vec![0.0, 0.0],
            Matrix::from_rows(&[vec![1.0, 1.0]]).unwrap(),
        )
        .unwrap();
        let sol = solve_log_gd(&p, &GdOptions::default()).unwrap();
        assert_eq!(sol.u, vec![0.0, 0.0]);
        assert_eq!(sol.objective, 0.0);
    }

    #[test]
    fn solution_never_worse_than_initial_point() {
        // A slightly larger random-ish problem.
        let k = 12;
        let n = 20;
        let b = Matrix::from_fn(n, k, |i, j| (((i * 7 + j * 3) % 5) as f64) / 4.0);
        let costs: Vec<f64> = (0..k).map(|i| 1.0 + (i as f64 % 4.0)).collect();
        let p = WeightingProblem::new(costs, b).unwrap();
        let init = p.initial_point();
        let sol = solve_log_gd(&p, &GdOptions::default()).unwrap();
        assert!(p.is_feasible(&sol.u, 1e-8));
        assert!(sol.objective <= p.objective(&init) * (1.0 + 1e-9));
    }

    #[test]
    fn fast_options_still_feasible() {
        let k = 8;
        let b = Matrix::from_fn(10, k, |i, j| (((i + j) % 3) as f64) / 2.0 + 0.1);
        let p = WeightingProblem::new(vec![1.0; k], b).unwrap();
        let sol = solve_log_gd(&p, &GdOptions::fast()).unwrap();
        assert!(p.is_feasible(&sol.u, 1e-8));
    }

    #[test]
    fn invalid_p_schedule_rejected() {
        let p = WeightingProblem::new(vec![1.0], Matrix::identity(1)).unwrap();
        let mut opts = GdOptions {
            p_schedule: vec![],
            ..Default::default()
        };
        assert!(solve_log_gd(&p, &opts).is_err());
        opts.p_schedule = vec![0.5];
        assert!(solve_log_gd(&p, &opts).is_err());
    }
}
