//! Error type for the optimization crate.

use std::fmt;

/// Result alias for optimization routines.
pub type Result<T> = std::result::Result<T, OptError>;

/// Errors produced by the solvers in this crate.
#[derive(Debug, Clone, PartialEq)]
pub enum OptError {
    /// The problem definition is inconsistent (shapes, negative costs, …).
    InvalidProblem(String),
    /// An iterative solver failed to converge.
    NonConvergence {
        /// Solver name.
        solver: &'static str,
        /// Iterations performed before giving up.
        iterations: usize,
    },
    /// A linear-algebra step failed.
    Linalg(mm_linalg::LinalgError),
}

impl fmt::Display for OptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OptError::InvalidProblem(msg) => write!(f, "invalid problem: {msg}"),
            OptError::NonConvergence { solver, iterations } => {
                write!(
                    f,
                    "{solver} failed to converge after {iterations} iterations"
                )
            }
            OptError::Linalg(e) => write!(f, "linear algebra error: {e}"),
        }
    }
}

impl std::error::Error for OptError {}

impl From<mm_linalg::LinalgError> for OptError {
    fn from(e: mm_linalg::LinalgError) -> Self {
        OptError::Linalg(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(OptError::InvalidProblem("x".into())
            .to_string()
            .contains("x"));
        assert!(OptError::NonConvergence {
            solver: "gd",
            iterations: 10
        }
        .to_string()
        .contains("gd"));
        let e: OptError = mm_linalg::LinalgError::Empty.into();
        assert!(e.to_string().contains("linear algebra"));
    }
}
