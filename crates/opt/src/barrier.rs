//! Log-barrier interior point solver with dense Newton steps.
//!
//! Minimises `Σ cᵢ/uᵢ` subject to `Bu ≤ 1`, `u ≥ 0` by following the central
//! path of
//!
//! ```text
//!     φ_μ(u) = Σᵢ cᵢ/uᵢ − μ Σⱼ log(1 − (Bu)ⱼ) − μ Σᵢ log uᵢ
//! ```
//!
//! with damped Newton steps and a geometric decrease of `μ`.  The Hessian is
//! `diag(2cᵢ/uᵢ³ + μ/uᵢ²) + Bᵀ diag(μ/(1−Bu)ⱼ²) B`, a dense `k×k` matrix, so
//! this solver is intended for moderate numbers of design queries (it is the
//! cross-validation reference for [`crate::gd::solve_log_gd`] and a viable
//! primary solver when `k ≤ a few hundred`).

use crate::error::{OptError, Result};
use crate::weighting::{WeightingProblem, WeightingSolution};
use mm_linalg::decomp::Cholesky;
use mm_linalg::Matrix;

/// Options for [`solve_barrier_newton`].
#[derive(Debug, Clone)]
pub struct BarrierOptions {
    /// Initial barrier weight.
    pub mu_initial: f64,
    /// Final barrier weight (controls the duality gap).
    pub mu_final: f64,
    /// Factor by which `μ` is decreased between outer iterations.
    pub mu_decrease: f64,
    /// Maximum Newton iterations per barrier stage.
    pub newton_iters: usize,
    /// Newton decrement tolerance.
    pub tol: f64,
}

impl Default for BarrierOptions {
    fn default() -> Self {
        BarrierOptions {
            mu_initial: 1.0,
            mu_final: 1e-8,
            mu_decrease: 0.2,
            newton_iters: 60,
            tol: 1e-10,
        }
    }
}

/// Ignores inactive (zero-cost) variables, which are fixed to zero.
struct Reduced<'a> {
    problem: &'a WeightingProblem,
    active: Vec<usize>,
}

impl<'a> Reduced<'a> {
    fn new(problem: &'a WeightingProblem) -> Self {
        let active = problem
            .costs()
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0.0)
            .map(|(i, _)| i)
            .collect();
        Reduced { problem, active }
    }

    fn costs(&self) -> Vec<f64> {
        self.active
            .iter()
            .map(|&i| self.problem.costs()[i])
            .collect()
    }

    /// Constraint rows restricted to active columns, with all-zero rows dropped.
    fn constraints(&self) -> Matrix {
        let b = self.problem.constraints();
        let mut rows: Vec<Vec<f64>> = Vec::new();
        for j in 0..b.rows() {
            let row: Vec<f64> = self.active.iter().map(|&i| b[(j, i)]).collect();
            if row.iter().any(|&v| v > 0.0) {
                rows.push(row);
            }
        }
        Matrix::from_rows(&rows).expect("constraint rows have equal lengths")
    }
}

/// Solves the weighting problem by the log-barrier Newton method.
pub fn solve_barrier_newton(
    problem: &WeightingProblem,
    opts: &BarrierOptions,
) -> Result<WeightingSolution> {
    if problem.costs().iter().all(|&c| c == 0.0) {
        return Ok(WeightingSolution {
            u: vec![0.0; problem.num_variables()],
            objective: 0.0,
            iterations: 0,
        });
    }
    if !(opts.mu_decrease > 0.0 && opts.mu_decrease < 1.0) {
        return Err(OptError::InvalidProblem(
            "mu_decrease must lie in (0, 1)".into(),
        ));
    }

    let reduced = Reduced::new(problem);
    let costs = reduced.costs();
    let b = reduced.constraints();
    let k = costs.len();
    let m = b.rows();

    // Strictly feasible start: the Theorem-2 weighting shrunk into the interior.
    let full_init = problem.initial_point();
    let mut u: Vec<f64> = reduced
        .active
        .iter()
        .map(|&i| (full_init[i] * 0.5).max(1e-8))
        .collect();

    let mut total_iters = 0usize;
    let mut mu = opts.mu_initial;
    while mu > opts.mu_final {
        for _ in 0..opts.newton_iters {
            total_iters += 1;
            // Slack of each constraint.
            let bu = b.matvec(&u)?;
            let slack: Vec<f64> = bu.iter().map(|&v| 1.0 - v).collect();
            if slack.iter().any(|&s| s <= 0.0) {
                return Err(OptError::NonConvergence {
                    solver: "barrier newton (infeasible iterate)",
                    iterations: total_iters,
                });
            }
            // Gradient.
            let mut grad = vec![0.0; k];
            for i in 0..k {
                grad[i] = -costs[i] / (u[i] * u[i]) - mu / u[i];
            }
            for (j, &sj) in slack.iter().enumerate().take(m) {
                let coeff = mu / sj;
                let row = b.row(j);
                for i in 0..k {
                    grad[i] += coeff * row[i];
                }
            }
            // Hessian.
            let mut h = Matrix::zeros(k, k);
            for i in 0..k {
                h[(i, i)] = 2.0 * costs[i] / (u[i] * u[i] * u[i]) + mu / (u[i] * u[i]);
            }
            for (j, &sj) in slack.iter().enumerate().take(m) {
                let coeff = mu / (sj * sj);
                let row = b.row(j);
                for p in 0..k {
                    if row[p] == 0.0 {
                        continue;
                    }
                    let s = coeff * row[p];
                    for q in 0..k {
                        h[(p, q)] += s * row[q];
                    }
                }
            }
            // Newton direction.
            let chol = Cholesky::new_with_shift(&h, 1e-12)?;
            let neg_grad: Vec<f64> = grad.iter().map(|&g| -g).collect();
            let dir = chol.solve_vec(&neg_grad)?;
            let decrement = mm_linalg::ops::dot(&dir, &neg_grad).abs();
            if decrement < opts.tol {
                break;
            }
            // Damped step keeping the iterate strictly feasible.
            let phi = |u_try: &[f64]| -> Option<f64> {
                if u_try.iter().any(|&v| v <= 0.0) {
                    return None;
                }
                let bu_try = b.matvec(u_try).ok()?;
                if bu_try.iter().any(|&v| v >= 1.0) {
                    return None;
                }
                let mut val = 0.0;
                for i in 0..k {
                    val += costs[i] / u_try[i] - mu * u_try[i].ln();
                }
                for &v in &bu_try {
                    val -= mu * (1.0 - v).ln();
                }
                Some(val)
            };
            let current = phi(&u).ok_or(OptError::NonConvergence {
                solver: "barrier newton",
                iterations: total_iters,
            })?;
            let mut step = 1.0;
            let mut moved = false;
            for _ in 0..60 {
                let candidate: Vec<f64> = u
                    .iter()
                    .zip(dir.iter())
                    .map(|(&ui, &di)| ui + step * di)
                    .collect();
                if let Some(val) = phi(&candidate) {
                    if val < current {
                        u = candidate;
                        moved = true;
                        break;
                    }
                }
                step *= 0.5;
            }
            if !moved {
                break;
            }
        }
        mu *= opts.mu_decrease;
    }

    let mut u_full = vec![0.0; problem.num_variables()];
    for (idx, &i) in reduced.active.iter().enumerate() {
        u_full[i] = u[idx];
    }
    let u_full = problem.normalize(&u_full);
    Ok(WeightingSolution {
        objective: problem.objective(&u_full),
        u: u_full,
        iterations: total_iters,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gd::{solve_log_gd, GdOptions};
    use mm_linalg::{approx_eq, Matrix};

    #[test]
    fn single_variable_exact() {
        let p = WeightingProblem::new(vec![3.0], Matrix::from_rows(&[vec![2.0]]).unwrap()).unwrap();
        let sol = solve_barrier_newton(&p, &BarrierOptions::default()).unwrap();
        assert!(approx_eq(sol.u[0], 0.5, 1e-5));
        assert!(approx_eq(sol.objective, 6.0, 1e-5));
    }

    #[test]
    fn shared_budget_matches_analytic_optimum() {
        let p = WeightingProblem::new(
            vec![9.0, 1.0],
            Matrix::from_rows(&[vec![1.0, 1.0]]).unwrap(),
        )
        .unwrap();
        let sol = solve_barrier_newton(&p, &BarrierOptions::default()).unwrap();
        // Optimum: u ∝ sqrt(c), objective (3+1)^2 = 16.
        assert!(approx_eq(sol.objective, 16.0, 1e-4));
        assert!(approx_eq(sol.u[0], 0.75, 1e-3));
    }

    #[test]
    fn agrees_with_gradient_solver() {
        let k = 10;
        let n = 14;
        let b = Matrix::from_fn(n, k, |i, j| (((i * 5 + j * 11) % 7) as f64) / 6.0 + 0.05);
        let costs: Vec<f64> = (0..k).map(|i| 0.5 + ((i * 3) % 5) as f64).collect();
        let p = WeightingProblem::new(costs, b).unwrap();
        let newton = solve_barrier_newton(&p, &BarrierOptions::default()).unwrap();
        let gd = solve_log_gd(&p, &GdOptions::default()).unwrap();
        assert!(p.is_feasible(&newton.u, 1e-7));
        assert!(p.is_feasible(&gd.u, 1e-7));
        let rel = (newton.objective - gd.objective).abs() / newton.objective;
        assert!(
            rel < 5e-3,
            "solvers disagree: newton={} gd={}",
            newton.objective,
            gd.objective
        );
    }

    #[test]
    fn zero_cost_problem() {
        let p = WeightingProblem::new(
            vec![0.0, 0.0],
            Matrix::from_rows(&[vec![1.0, 1.0]]).unwrap(),
        )
        .unwrap();
        let sol = solve_barrier_newton(&p, &BarrierOptions::default()).unwrap();
        assert_eq!(sol.objective, 0.0);
    }

    #[test]
    fn invalid_options_rejected() {
        let p = WeightingProblem::new(vec![1.0], Matrix::identity(1)).unwrap();
        let opts = BarrierOptions {
            mu_decrease: 1.5,
            ..Default::default()
        };
        assert!(solve_barrier_newton(&p, &opts).is_err());
    }
}
