//! The [`Strategy`] type: a query strategy for the matrix mechanism.

use mm_linalg::{ops, Matrix};

/// Maximum number of matrix entries we are willing to materialise for an
/// explicit strategy matrix (larger strategies keep only their gram matrix).
pub const EXPLICIT_ENTRY_LIMIT: usize = 33_554_432; // 32M entries = 256 MiB

/// A query strategy `A` for the matrix mechanism.
///
/// The error formula (Prop. 4) and the strategy-selection algorithms only need
/// `AᵀA` and the sensitivity of `A`, so those are always stored; the explicit
/// matrix is kept when small enough (it is required to actually *run* the
/// mechanism and sample noisy answers).
#[derive(Debug, Clone)]
pub struct Strategy {
    name: String,
    matrix: Option<Matrix>,
    gram: Matrix,
    l2_sensitivity: f64,
    l1_sensitivity: f64,
    rows: usize,
}

impl Strategy {
    /// Builds a strategy from an explicit matrix, computing its gram matrix
    /// and sensitivities.
    pub fn from_matrix(name: impl Into<String>, matrix: Matrix) -> Self {
        assert!(
            matrix.rows() > 0 && matrix.cols() > 0,
            "strategy must be non-empty"
        );
        let gram = ops::gram(&matrix);
        let l2 = matrix.max_col_norm_l2();
        let l1 = matrix.max_col_norm_l1();
        let rows = matrix.rows();
        Strategy {
            name: name.into(),
            matrix: Some(matrix),
            gram,
            l2_sensitivity: l2,
            l1_sensitivity: l1,
            rows,
        }
    }

    /// Builds a strategy from precomputed parts.
    ///
    /// `gram` must equal `AᵀA` of the conceptual strategy; the sensitivities
    /// and row count describe that same matrix.  The explicit matrix may be
    /// omitted for strategies that are too large to materialise.
    pub fn from_parts(
        name: impl Into<String>,
        matrix: Option<Matrix>,
        gram: Matrix,
        l2_sensitivity: f64,
        l1_sensitivity: f64,
        rows: usize,
    ) -> Self {
        assert!(gram.is_square(), "gram matrix must be square");
        if let Some(m) = &matrix {
            assert_eq!(m.cols(), gram.rows(), "matrix/gram dimension mismatch");
            assert_eq!(m.rows(), rows, "row count mismatch");
        }
        Strategy {
            name: name.into(),
            matrix,
            gram,
            l2_sensitivity,
            l1_sensitivity,
            rows,
        }
    }

    /// Kronecker product of several strategies (used for multi-attribute
    /// domains): the gram is the Kronecker product of the grams and the
    /// sensitivities multiply.
    pub fn kron(name: impl Into<String>, factors: &[Strategy]) -> Self {
        assert!(!factors.is_empty(), "kron needs at least one factor");
        let grams: Vec<Matrix> = factors.iter().map(|f| f.gram.clone()).collect();
        let gram = ops::kron_all(&grams);
        let rows: usize = factors.iter().map(|f| f.rows).product();
        let cols = gram.rows();
        let matrix = if factors.iter().all(|f| f.matrix.is_some())
            && rows.saturating_mul(cols) <= EXPLICIT_ENTRY_LIMIT
        {
            let ms: Vec<Matrix> = factors
                .iter()
                .map(|f| f.matrix.clone().expect("checked above"))
                .collect();
            Some(ops::kron_all(&ms))
        } else {
            None
        };
        Strategy {
            name: name.into(),
            matrix,
            gram,
            l2_sensitivity: factors.iter().map(|f| f.l2_sensitivity).product(),
            l1_sensitivity: factors.iter().map(|f| f.l1_sensitivity).product(),
            rows,
        }
    }

    /// Strategy name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of strategy queries (rows of `A`).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of cells (columns of `A`).
    pub fn dim(&self) -> usize {
        self.gram.rows()
    }

    /// The explicit strategy matrix, when materialised.
    pub fn matrix(&self) -> Option<&Matrix> {
        self.matrix.as_ref()
    }

    /// The gram matrix `AᵀA`.
    pub fn gram(&self) -> &Matrix {
        &self.gram
    }

    /// L2 sensitivity `‖A‖₂` (maximum column L2 norm, Prop. 1).
    pub fn l2_sensitivity(&self) -> f64 {
        self.l2_sensitivity
    }

    /// L1 sensitivity `‖A‖₁` (maximum column L1 norm).
    pub fn l1_sensitivity(&self) -> f64 {
        self.l1_sensitivity
    }

    /// Returns a copy of the strategy with every entry scaled by `s > 0`.
    ///
    /// Scaling a strategy does not change the error of the matrix mechanism
    /// (the sensitivity and the inference step scale together); this is
    /// provided for normalising strategies in reports and tests.
    pub fn scaled(&self, s: f64) -> Strategy {
        assert!(s > 0.0 && s.is_finite());
        Strategy {
            name: self.name.clone(),
            matrix: self.matrix.as_ref().map(|m| m.scaled(s)),
            gram: self.gram.scaled(s * s),
            l2_sensitivity: self.l2_sensitivity * s,
            l1_sensitivity: self.l1_sensitivity * s,
            rows: self.rows,
        }
    }

    /// Renames the strategy (builder style).
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mm_linalg::approx_eq;

    #[test]
    fn from_matrix_computes_gram_and_sensitivity() {
        let m = Matrix::from_rows(&[vec![1.0, 1.0], vec![1.0, -1.0], vec![0.0, 1.0]]).unwrap();
        let s = Strategy::from_matrix("test", m);
        assert_eq!(s.rows(), 3);
        assert_eq!(s.dim(), 2);
        assert!(approx_eq(s.l2_sensitivity(), 3.0_f64.sqrt(), 1e-12));
        assert!(approx_eq(s.l1_sensitivity(), 3.0, 1e-12));
        assert!(approx_eq(s.gram()[(0, 0)], 2.0, 1e-12));
        assert!(approx_eq(s.gram()[(0, 1)], 0.0, 1e-12));
    }

    #[test]
    fn kron_multiplies_sensitivities() {
        let a = Strategy::from_matrix("a", Matrix::identity(2));
        let b = Strategy::from_matrix(
            "b",
            Matrix::from_rows(&[vec![1.0, 1.0], vec![1.0, 0.0]]).unwrap(),
        );
        let k = Strategy::kron("a x b", &[a.clone(), b.clone()]);
        assert_eq!(k.dim(), 4);
        assert_eq!(k.rows(), 4);
        assert!(approx_eq(
            k.l2_sensitivity(),
            a.l2_sensitivity() * b.l2_sensitivity(),
            1e-12
        ));
        // Gram of the kron equals kron of grams; verify against explicit matrix.
        let explicit = ops::gram(k.matrix().unwrap());
        for i in 0..4 {
            for j in 0..4 {
                assert!(approx_eq(k.gram()[(i, j)], explicit[(i, j)], 1e-12));
            }
        }
    }

    #[test]
    fn kron_sensitivity_matches_explicit() {
        let a = Strategy::from_matrix(
            "a",
            Matrix::from_rows(&[vec![1.0, 2.0], vec![0.0, 1.0]]).unwrap(),
        );
        let b = Strategy::from_matrix(
            "b",
            Matrix::from_rows(&[vec![1.0, 0.0, 1.0], vec![1.0, 1.0, 0.0]]).unwrap(),
        );
        let k = Strategy::kron("axb", &[a, b]);
        let m = k.matrix().unwrap();
        assert!(approx_eq(k.l2_sensitivity(), m.max_col_norm_l2(), 1e-12));
        assert!(approx_eq(k.l1_sensitivity(), m.max_col_norm_l1(), 1e-12));
    }

    #[test]
    fn scaling_scales_gram_quadratically() {
        let s = Strategy::from_matrix("s", Matrix::identity(3)).scaled(2.0);
        assert!(approx_eq(s.gram()[(0, 0)], 4.0, 1e-12));
        assert!(approx_eq(s.l2_sensitivity(), 2.0, 1e-12));
    }

    #[test]
    fn from_parts_without_matrix() {
        let s = Strategy::from_parts("implicit", None, Matrix::identity(4), 1.0, 1.0, 4);
        assert!(s.matrix().is_none());
        assert_eq!(s.dim(), 4);
        assert_eq!(s.with_name("renamed").name(), "renamed");
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn from_parts_mismatch_panics() {
        Strategy::from_parts(
            "bad",
            Some(Matrix::identity(3)),
            Matrix::identity(4),
            1.0,
            1.0,
            3,
        );
    }
}
