//! The Fourier strategy for marginal workloads (Barak et al.), generalised to
//! non-binary attribute domains.
//!
//! Barak et al. answer a set of Fourier-basis queries (characters of `Z₂ᵈ`)
//! and derive the requested marginals from them; when the workload does not
//! need every marginal, the unnecessary basis queries are dropped, reducing
//! sensitivity.  For attributes with more than two values we use, per
//! attribute, any orthonormal basis whose first row is the uniform vector
//! (here the orthonormal DCT-II basis), and take as the strategy all tensor
//! products of per-attribute basis rows whose set of non-uniform components is
//! contained in some marginal of the workload.  For binary attributes this is
//! exactly the Fourier basis; in general it keeps the defining property that
//! the marginal on `S` is exactly reconstructible from the retained rows with
//! support `⊆ S`.

use crate::strategy::Strategy;
use mm_linalg::{ops, Matrix};
use mm_workload::marginal::MarginalWorkload;
use std::collections::BTreeSet;

/// The orthonormal DCT-II basis for a single attribute with `d` values.
///
/// Row 0 is the uniform vector `1/√d`; the remaining rows complete an
/// orthonormal basis.  For `d = 2` this equals the (normalised) Fourier /
/// Hadamard basis.
pub fn attribute_basis(d: usize) -> Matrix {
    assert!(d > 0);
    Matrix::from_fn(d, d, |f, x| {
        if f == 0 {
            1.0 / (d as f64).sqrt()
        } else {
            (2.0 / d as f64).sqrt()
                * (std::f64::consts::PI * (x as f64 + 0.5) * f as f64 / d as f64).cos()
        }
    })
}

/// The downward closure of the workload's marginal subsets: every subset of
/// every workload subset, deduplicated and sorted.
pub fn downward_closure(subsets: &[Vec<usize>]) -> Vec<Vec<usize>> {
    let mut closure: BTreeSet<Vec<usize>> = BTreeSet::new();
    for s in subsets {
        let k = s.len();
        for mask in 0..(1usize << k) {
            let sub: Vec<usize> = (0..k)
                .filter(|&i| mask & (1 << i) != 0)
                .map(|i| s[i])
                .collect();
            closure.insert(sub);
        }
    }
    closure.into_iter().collect()
}

/// Builds the Fourier strategy for a marginal workload.
///
/// The strategy contains, for every subset `S` in the downward closure of the
/// workload's marginal sets, all tensor-basis rows whose non-uniform
/// components are exactly the attributes of `S`.
pub fn fourier_strategy(workload: &MarginalWorkload) -> Strategy {
    let domain = workload.domain();
    let sizes = domain.sizes();
    let k = sizes.len();
    let n = domain.n_cells();
    let bases: Vec<Matrix> = sizes.iter().map(|&d| attribute_basis(d)).collect();
    let closure = downward_closure(workload.subsets());

    // Count rows first.
    let row_count: usize = closure
        .iter()
        .map(|s| s.iter().map(|&a| sizes[a] - 1).product::<usize>())
        .sum();
    assert!(row_count > 0, "fourier strategy is empty");

    let mut matrix = Matrix::zeros(row_count, n);
    let mut r = 0;
    for subset in &closure {
        // Frequencies: f_a in 1..sizes[a] for a in subset, f_a = 0 otherwise.
        let mut freq = vec![0usize; k];
        // Odometer over the subset's attributes.
        let total: usize = subset.iter().map(|&a| sizes[a] - 1).product();
        let mut counters = vec![0usize; subset.len()];
        for _ in 0..total.max(1) {
            if subset.is_empty() {
                // Single all-uniform row.
            } else {
                for (pos, &a) in subset.iter().enumerate() {
                    freq[a] = counters[pos] + 1;
                }
            }
            // Fill the tensor-product row: entry for cell (x_1..x_k) is the
            // product of per-attribute basis entries.
            fill_tensor_row(matrix.row_mut(r), &bases, &freq, sizes);
            r += 1;
            // Advance counters.
            let mut pos = subset.len();
            loop {
                if pos == 0 {
                    break;
                }
                pos -= 1;
                counters[pos] += 1;
                if counters[pos] < sizes[subset[pos]] - 1 {
                    break;
                }
                counters[pos] = 0;
                if pos == 0 {
                    break;
                }
            }
            if subset.is_empty() {
                break;
            }
        }
        // Reset the freq vector for the next subset.
        freq.fill(0);
    }
    debug_assert_eq!(r, row_count);
    Strategy::from_matrix(
        format!("fourier on {} ({} rows)", domain, row_count),
        matrix,
    )
}

/// Writes the tensor-product basis row for the given per-attribute
/// frequencies into `row` (length = number of cells, row-major).
fn fill_tensor_row(row: &mut [f64], bases: &[Matrix], freq: &[usize], sizes: &[usize]) {
    let k = sizes.len();
    let mut idx = vec![0usize; k];
    for slot in row.iter_mut() {
        let mut v = 1.0;
        for a in 0..k {
            v *= bases[a][(freq[a], idx[a])];
        }
        *slot = v;
        // Advance the cell odometer (last attribute fastest).
        let mut a = k;
        loop {
            if a == 0 {
                break;
            }
            a -= 1;
            idx[a] += 1;
            if idx[a] < sizes[a] {
                break;
            }
            idx[a] = 0;
            if a == 0 {
                break;
            }
        }
    }
}

/// Verifies (numerically) that a workload gram matrix lies in the span of the
/// strategy rows: `rank([A; W]) == rank(A)` would be exact; here we check that
/// projecting the workload's gram onto the strategy row space loses nothing.
/// Exposed for tests and diagnostics.
pub fn reconstructs_workload(strategy: &Strategy, workload_gram: &Matrix, tol: f64) -> bool {
    // The strategy rows span a subspace V; the workload is reconstructible iff
    // WᵀW restricted to the orthogonal complement of V is zero, i.e.
    // trace((I - P) WᵀW (I - P)) ~ 0 with P the projector onto V.
    let a = match strategy.matrix() {
        Some(m) => m,
        None => return false,
    };
    // P = Aᵀ (A Aᵀ)⁻¹ A ; use the gram AᵀA eigen-decomposition instead to
    // avoid inverting A Aᵀ for row-rank-deficient strategies.
    let eig = match mm_linalg::decomp::SymmetricEigen::new(&ops::gram(a)) {
        Ok(e) => e,
        Err(_) => return false,
    };
    let max_ev = eig.eigenvalues().first().copied().unwrap_or(0.0);
    let n = a.cols();
    let mut p = Matrix::zeros(n, n);
    for (k, &lam) in eig.eigenvalues().iter().enumerate() {
        if lam <= 1e-10 * max_ev {
            continue;
        }
        for i in 0..n {
            let vik = eig.eigenvectors()[(i, k)];
            if vik == 0.0 {
                continue;
            }
            for j in 0..n {
                p[(i, j)] += vik * eig.eigenvectors()[(j, k)];
            }
        }
    }
    // residual = trace(WᵀW) - trace(P WᵀW P) = trace(WᵀW (I - P)) for projector P.
    let total = workload_gram.trace();
    let projected = ops::matmul(&ops::matmul(&p, workload_gram).unwrap(), &p)
        .unwrap()
        .trace();
    (total - projected).abs() <= tol * total.max(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mm_linalg::approx_eq;
    use mm_workload::marginal::MarginalKind;
    use mm_workload::{Domain, Workload};

    #[test]
    fn attribute_basis_is_orthonormal() {
        for d in [2usize, 3, 5, 8] {
            let b = attribute_basis(d);
            let g = ops::outer_gram(&b);
            for i in 0..d {
                for j in 0..d {
                    let e = if i == j { 1.0 } else { 0.0 };
                    assert!(approx_eq(g[(i, j)], e, 1e-10), "d={d} ({i},{j})");
                }
            }
            // First row is uniform.
            for x in 0..d {
                assert!(approx_eq(b[(0, x)], 1.0 / (d as f64).sqrt(), 1e-12));
            }
        }
    }

    #[test]
    fn binary_attribute_basis_is_hadamard() {
        let b = attribute_basis(2);
        let s = 1.0 / 2.0_f64.sqrt();
        assert!(approx_eq(b[(0, 0)], s, 1e-12));
        assert!(approx_eq(b[(0, 1)], s, 1e-12));
        assert!(approx_eq(b[(1, 0)], s, 1e-9));
        assert!(approx_eq(b[(1, 1)], -s, 1e-9));
    }

    #[test]
    fn downward_closure_of_two_way() {
        let closure = downward_closure(&[vec![0, 1], vec![1, 2]]);
        assert!(closure.contains(&vec![]));
        assert!(closure.contains(&vec![0]));
        assert!(closure.contains(&vec![1]));
        assert!(closure.contains(&vec![2]));
        assert!(closure.contains(&vec![0, 1]));
        assert!(closure.contains(&vec![1, 2]));
        assert_eq!(closure.len(), 6);
    }

    #[test]
    fn full_marginal_fourier_is_orthonormal_basis() {
        let d = Domain::new(&[2, 3]);
        let w = MarginalWorkload::all_k_way(d, 2, MarginalKind::Point);
        let s = fourier_strategy(&w);
        assert_eq!(s.rows(), 6);
        assert!(approx_eq(s.l2_sensitivity(), 1.0, 1e-9));
    }

    #[test]
    fn low_order_fourier_has_fewer_rows_and_lower_sensitivity() {
        let d = Domain::new(&[4, 4, 4]);
        let w1 = MarginalWorkload::all_k_way(d.clone(), 1, MarginalKind::Point);
        let s1 = fourier_strategy(&w1);
        // Closure: {} + three singletons => 1 + 3*3 = 10 rows.
        assert_eq!(s1.rows(), 10);
        assert!(s1.l2_sensitivity() < 1.0);

        let w2 = MarginalWorkload::all_k_way(d, 2, MarginalKind::Point);
        let s2 = fourier_strategy(&w2);
        assert_eq!(s2.rows(), 1 + 9 + 27);
        assert!(s2.rows() < 64);
    }

    #[test]
    fn fourier_spans_its_marginal_workload() {
        let d = Domain::new(&[3, 2, 2]);
        let w = MarginalWorkload::all_k_way(d, 2, MarginalKind::Point);
        let s = fourier_strategy(&w);
        assert!(reconstructs_workload(&s, &w.gram(), 1e-8));
    }

    #[test]
    fn fourier_does_not_span_unrelated_workload() {
        // 1-way Fourier strategy cannot reconstruct the 2-way marginal workload.
        let d = Domain::new(&[3, 3]);
        let w1 = MarginalWorkload::all_k_way(d.clone(), 1, MarginalKind::Point);
        let s = fourier_strategy(&w1);
        let w2 = MarginalWorkload::all_k_way(d, 2, MarginalKind::Point);
        assert!(!reconstructs_workload(&s, &w2.gram(), 1e-8));
    }
}
