//! # mm-strategies
//!
//! Strategy matrices from prior work, used both as competitors in the paper's
//! evaluation (Sec. 5) and as alternative design sets for the weighting
//! program (Fig. 5):
//!
//! * [`identity`] — the identity strategy (per-cell noisy counts);
//! * [`hierarchical`] — Hay et al.'s binary/k-ary tree of interval counts;
//! * [`wavelet`] — Xiao et al.'s Haar wavelet strategy;
//! * [`fourier`] — Barak et al.'s Fourier strategy, generalised to non-binary
//!   attribute domains (see `DESIGN.md` for the substitution note);
//! * [`datacube`] — Ding et al.'s BMAX sub-marginal selection.
//!
//! All of them produce a [`Strategy`], which carries the strategy's gram
//! matrix `AᵀA` and its L1/L2 sensitivities (and the explicit matrix whenever
//! it is affordable), which is exactly what the matrix-mechanism error formula
//! (Prop. 4) needs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod datacube;
pub mod fourier;
pub mod hierarchical;
pub mod identity;
pub mod operator;
pub mod strategy;
pub mod wavelet;

pub use operator::{
    haar_strategy, hierarchical_strategy_structured, Run, RunRowsOperator, StrategyDescriptor,
    StructuredStrategy,
};
pub use strategy::Strategy;
