//! Hierarchical strategies (Hay et al.): a k-ary tree of interval counts.
//!
//! The 1D strategy asks the total count, then recursively splits the domain
//! into `branching` equal parts down to individual cells, asking each interval
//! count along the way.  Range queries are answered by combining `O(log n)`
//! tree nodes, which is what makes the strategy effective for range workloads.
//! Multi-dimensional variants are Kronecker products of the 1D strategies (the
//! adaptation used by the paper's evaluation, analogous to the wavelet case).

use crate::strategy::{Strategy, EXPLICIT_ENTRY_LIMIT};
use mm_linalg::Matrix;
use mm_workload::Domain;

/// The intervals (lo, hi inclusive) of the k-ary hierarchy over `n` cells,
/// from the root down, level by level.
pub fn hierarchy_intervals(n: usize, branching: usize) -> Vec<(usize, usize)> {
    assert!(n > 0, "hierarchy needs at least one cell");
    assert!(branching >= 2, "branching factor must be at least 2");
    let mut intervals = Vec::new();
    let mut frontier = vec![(0usize, n - 1)];
    while !frontier.is_empty() {
        let mut next = Vec::new();
        for &(lo, hi) in &frontier {
            intervals.push((lo, hi));
            let len = hi - lo + 1;
            if len <= 1 {
                continue;
            }
            // Split into `branching` nearly-equal parts.
            let base = len / branching;
            let extra = len % branching;
            let mut start = lo;
            for b in 0..branching {
                let part = base + usize::from(b < extra);
                if part == 0 {
                    continue;
                }
                next.push((start, start + part - 1));
                start += part;
            }
        }
        frontier = next;
    }
    intervals
}

/// The 1D hierarchical strategy over `n` cells with the given branching factor.
pub fn hierarchical_1d(n: usize, branching: usize) -> Strategy {
    let intervals = hierarchy_intervals(n, branching);
    let rows = intervals.len();
    // Gram matrix in closed form: (AᵀA)[i][j] = number of intervals containing both.
    let mut gram = Matrix::zeros(n, n);
    for &(lo, hi) in &intervals {
        for i in lo..=hi {
            let row = gram.row_mut(i);
            for v in &mut row[lo..=hi] {
                *v += 1.0;
            }
        }
    }
    // Sensitivities: each cell appears once per level of the tree above it.
    let mut col_counts = vec![0usize; n];
    for &(lo, hi) in &intervals {
        for c in col_counts.iter_mut().take(hi + 1).skip(lo) {
            *c += 1;
        }
    }
    let max_count = *col_counts.iter().max().expect("n > 0") as f64;
    let l2 = max_count.sqrt();
    let l1 = max_count;
    let matrix = if rows.saturating_mul(n) <= EXPLICIT_ENTRY_LIMIT {
        let mut m = Matrix::zeros(rows, n);
        for (r, &(lo, hi)) in intervals.iter().enumerate() {
            for v in &mut m.row_mut(r)[lo..=hi] {
                *v = 1.0;
            }
        }
        Some(m)
    } else {
        None
    };
    Strategy::from_parts(
        format!("hierarchical (b={branching}, n={n})"),
        matrix,
        gram,
        l2,
        l1,
        rows,
    )
}

/// The binary hierarchical strategy used in the paper's experiments.
pub fn binary_hierarchical_1d(n: usize) -> Strategy {
    hierarchical_1d(n, 2)
}

/// Multi-dimensional hierarchical strategy: the Kronecker product of the
/// per-attribute binary hierarchies.
pub fn hierarchical_strategy(domain: &Domain, branching: usize) -> Strategy {
    let factors: Vec<Strategy> = domain
        .sizes()
        .iter()
        .map(|&d| hierarchical_1d(d, branching))
        .collect();
    Strategy::kron(
        format!("hierarchical (b={branching}) on {domain}"),
        &factors,
    )
}

/// Binary multi-dimensional hierarchical strategy.
pub fn binary_hierarchical(domain: &Domain) -> Strategy {
    hierarchical_strategy(domain, 2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mm_linalg::{approx_eq, ops};

    #[test]
    fn intervals_of_small_tree() {
        let iv = hierarchy_intervals(4, 2);
        assert_eq!(
            iv,
            vec![(0, 3), (0, 1), (2, 3), (0, 0), (1, 1), (2, 2), (3, 3)]
        );
    }

    #[test]
    fn intervals_cover_non_power_of_two() {
        let iv = hierarchy_intervals(5, 2);
        // Every singleton must appear.
        for i in 0..5 {
            assert!(iv.contains(&(i, i)), "missing singleton {i}");
        }
        assert!(iv.contains(&(0, 4)));
    }

    #[test]
    fn gram_matches_explicit_matrix() {
        for n in [4usize, 7, 8] {
            let s = hierarchical_1d(n, 2);
            let m = s.matrix().unwrap();
            let g = ops::gram(m);
            for i in 0..n {
                for j in 0..n {
                    assert!(
                        approx_eq(s.gram()[(i, j)], g[(i, j)], 1e-12),
                        "n={n} ({i},{j})"
                    );
                }
            }
            assert!(approx_eq(s.l2_sensitivity(), m.max_col_norm_l2(), 1e-12));
            assert!(approx_eq(s.l1_sensitivity(), m.max_col_norm_l1(), 1e-12));
        }
    }

    #[test]
    fn binary_tree_sensitivity_is_sqrt_depth() {
        // For n = 2^k the binary hierarchy has k+1 levels and every cell
        // appears exactly once per level.
        let s = binary_hierarchical_1d(8);
        assert!(approx_eq(s.l2_sensitivity(), 2.0, 1e-12)); // sqrt(4 levels)
        assert!(approx_eq(s.l1_sensitivity(), 4.0, 1e-12));
        assert_eq!(s.rows(), 15);
    }

    #[test]
    fn branching_factor_four() {
        let s = hierarchical_1d(16, 4);
        // Levels: root, 4 nodes, 16 singletons => depth 3.
        assert!(approx_eq(s.l1_sensitivity(), 3.0, 1e-12));
        assert_eq!(s.rows(), 1 + 4 + 16);
    }

    #[test]
    fn multi_dim_strategy_dimensions() {
        let d = Domain::new(&[4, 4]);
        let s = binary_hierarchical(&d);
        assert_eq!(s.dim(), 16);
        assert_eq!(s.rows(), 7 * 7);
        assert!(approx_eq(s.l2_sensitivity(), 3.0, 1e-12)); // sqrt(3)*sqrt(3)
    }

    #[test]
    fn rank_is_full() {
        // The hierarchy contains all singletons, so AᵀA is full rank.
        let s = hierarchical_1d(6, 2);
        let eig = mm_linalg::decomp::SymmetricEigen::new(s.gram()).unwrap();
        assert_eq!(eig.rank(1e-9), 6);
    }

    #[test]
    #[should_panic(expected = "branching factor")]
    fn branching_one_panics() {
        hierarchical_1d(4, 1);
    }
}
