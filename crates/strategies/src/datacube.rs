//! The DataCube / BMAX strategy (Ding et al.).
//!
//! Given a workload of marginals, the BMAX algorithm publishes a *subset* of
//! marginal cuboids (possibly higher-dimensional than the requested ones) so
//! as to minimise the maximum error over the workload marginals, where every
//! requested marginal is answered by aggregating the cells of one published
//! super-marginal.  Under (ε,δ)-differential privacy the L2 sensitivity of
//! publishing `|M|` cuboids is `√|M|`, and answering a marginal on `S` from a
//! published cuboid `T ⊇ S` aggregates `Π_{i∈T∖S} dᵢ` noisy cells, so the
//! squared error objective is
//!
//! ```text
//!     cost(M) = |M| · max_S  min_{T ∈ M, T ⊇ S}  Π_{i∈T∖S} dᵢ
//! ```
//!
//! For domains with at most [`EXHAUSTIVE_ATTRIBUTE_LIMIT`] attributes the
//! minimum is found by exhaustive search over cuboid subsets; larger domains
//! fall back to a greedy + local-swap search (the original paper uses a
//! subset-sum style approximation; the greedy attains the same qualitative
//! error levels on the small lattices used in the evaluation).

use crate::strategy::Strategy;
use mm_linalg::{ops, Matrix};
use mm_workload::marginal::MarginalWorkload;
use mm_workload::Domain;

/// Maximum number of attributes for which the cuboid subset is chosen by
/// exhaustive search (2^(2^k) candidate sets).
pub const EXHAUSTIVE_ATTRIBUTE_LIMIT: usize = 4;

/// Result of the BMAX selection: the chosen cuboids (as attribute subsets) and
/// the value of the max-error objective.
#[derive(Debug, Clone)]
pub struct BmaxSelection {
    /// Chosen cuboids, each an attribute-index subset (sorted).
    pub cuboids: Vec<Vec<usize>>,
    /// The squared max-error objective `|M| · max_S min_T Π d`.
    pub objective: f64,
}

fn subset_mask(subset: &[usize]) -> u32 {
    subset.iter().fold(0u32, |m, &a| m | (1 << a))
}

fn mask_to_subset(mask: u32, k: usize) -> Vec<usize> {
    (0..k).filter(|&a| mask & (1 << a) != 0).collect()
}

/// Aggregation factor for answering workload marginal `s` from cuboid `t`
/// (`Π_{i∈t∖s} dᵢ`), or `None` when `t` is not a superset of `s`.
fn aggregation_factor(domain: &Domain, s: u32, t: u32) -> Option<f64> {
    if s & !t != 0 {
        return None;
    }
    let extra = t & !s;
    let mut factor = 1.0;
    for a in 0..domain.num_attributes() {
        if extra & (1 << a) != 0 {
            factor *= domain.size(a) as f64;
        }
    }
    Some(factor)
}

fn cost_of(domain: &Domain, workload: &[u32], chosen: &[u32]) -> Option<f64> {
    if chosen.is_empty() {
        return None;
    }
    let mut worst: f64 = 0.0;
    for &s in workload {
        let mut best = f64::INFINITY;
        for &t in chosen {
            if let Some(f) = aggregation_factor(domain, s, t) {
                if f < best {
                    best = f;
                }
            }
        }
        if !best.is_finite() {
            return None;
        }
        worst = worst.max(best);
    }
    Some(chosen.len() as f64 * worst)
}

/// Runs the BMAX cuboid selection for a marginal workload.
pub fn bmax_selection(workload: &MarginalWorkload) -> BmaxSelection {
    let domain = workload.domain();
    let k = domain.num_attributes();
    let workload_masks: Vec<u32> = workload.subsets().iter().map(|s| subset_mask(s)).collect();
    // Candidate cuboids: every attribute subset (the full lattice).
    let candidates: Vec<u32> = (0..(1u32 << k)).collect();

    let (chosen, objective) = if k <= EXHAUSTIVE_ATTRIBUTE_LIMIT {
        exhaustive_search(domain, &workload_masks, &candidates)
    } else {
        greedy_search(domain, &workload_masks, &candidates)
    };
    BmaxSelection {
        cuboids: chosen.iter().map(|&m| mask_to_subset(m, k)).collect(),
        objective,
    }
}

fn exhaustive_search(domain: &Domain, workload: &[u32], candidates: &[u32]) -> (Vec<u32>, f64) {
    let c = candidates.len();
    let mut best: Option<(Vec<u32>, f64)> = None;
    for selection in 1u64..(1u64 << c) {
        let chosen: Vec<u32> = (0..c)
            .filter(|&i| selection & (1 << i) != 0)
            .map(|i| candidates[i])
            .collect();
        if let Some(cost) = cost_of(domain, workload, &chosen) {
            match &best {
                Some((_, b)) if *b <= cost => {}
                _ => best = Some((chosen, cost)),
            }
        }
    }
    best.expect("the full cuboid always yields a finite cost")
}

fn greedy_search(domain: &Domain, workload: &[u32], candidates: &[u32]) -> (Vec<u32>, f64) {
    // Start from "publish exactly the requested marginals", which is always
    // feasible, then locally improve by removing cuboids (when the rest still
    // covers the workload) or merging two cuboids into their union (which
    // trades a larger aggregation factor for a smaller publication count).
    let mut chosen: Vec<u32> = {
        let mut v: Vec<u32> = workload.to_vec();
        v.sort_unstable();
        v.dedup();
        v
    };
    let mut cost = cost_of(domain, workload, &chosen).expect("workload covers itself");

    let mut improved = true;
    while improved {
        improved = false;
        let mut best: Option<(Vec<u32>, f64)> = None;
        // Removals.
        for i in 0..chosen.len() {
            let mut trial = chosen.clone();
            trial.remove(i);
            if let Some(c) = cost_of(domain, workload, &trial) {
                if c < cost && best.as_ref().map(|(_, b)| c < *b).unwrap_or(true) {
                    best = Some((trial, c));
                }
            }
        }
        // Pairwise merges into the union cuboid.
        for i in 0..chosen.len() {
            for j in (i + 1)..chosen.len() {
                let union = chosen[i] | chosen[j];
                let mut trial: Vec<u32> = chosen
                    .iter()
                    .enumerate()
                    .filter(|&(idx, _)| idx != i && idx != j)
                    .map(|(_, &m)| m)
                    .collect();
                if !trial.contains(&union) {
                    trial.push(union);
                }
                if let Some(c) = cost_of(domain, workload, &trial) {
                    if c < cost && best.as_ref().map(|(_, b)| c < *b).unwrap_or(true) {
                        best = Some((trial, c));
                    }
                }
            }
        }
        if let Some((trial, c)) = best {
            chosen = trial;
            cost = c;
            improved = true;
        }
    }

    // The single full cuboid is another natural candidate; keep the better one.
    let full: u32 = (0..domain.num_attributes()).fold(0, |m, a| m | (1 << a));
    if let Some(c) = cost_of(domain, workload, &[full]) {
        if c < cost {
            return (vec![full], c);
        }
    }
    let _ = candidates;
    (chosen, cost)
}

/// Builds the marginal query matrix for one cuboid (attribute subset).
fn cuboid_matrix(domain: &Domain, subset: &[usize]) -> Matrix {
    let factors: Vec<Matrix> = (0..domain.num_attributes())
        .map(|a| {
            if subset.contains(&a) {
                Matrix::identity(domain.size(a))
            } else {
                Matrix::filled(1, domain.size(a), 1.0)
            }
        })
        .collect();
    ops::kron_all(&factors)
}

/// Builds the DataCube (BMAX) strategy for a marginal workload.
pub fn datacube_strategy(workload: &MarginalWorkload) -> Strategy {
    let selection = bmax_selection(workload);
    let domain = workload.domain();
    let mut stacked: Option<Matrix> = None;
    for cuboid in &selection.cuboids {
        let m = cuboid_matrix(domain, cuboid);
        stacked = Some(match stacked {
            None => m,
            Some(acc) => acc.vstack(&m).expect("same cell count"),
        });
    }
    let matrix = stacked.expect("bmax always selects at least one cuboid");
    Strategy::from_matrix(
        format!(
            "datacube/BMAX on {} ({} cuboids)",
            domain,
            selection.cuboids.len()
        ),
        matrix,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use mm_linalg::approx_eq;
    use mm_workload::marginal::MarginalKind;

    #[test]
    fn aggregation_factor_basics() {
        let d = Domain::new(&[4, 8, 2]);
        // S = {0}, T = {0,1}: aggregate over attribute 1 => factor 8.
        assert_eq!(aggregation_factor(&d, 0b001, 0b011), Some(8.0));
        // T not a superset.
        assert_eq!(aggregation_factor(&d, 0b001, 0b010), None);
        // Equal sets: factor 1.
        assert_eq!(aggregation_factor(&d, 0b101, 0b101), Some(1.0));
    }

    #[test]
    fn bmax_answers_single_marginal_directly() {
        // Workload = a single 1-way marginal: publishing exactly that marginal
        // is optimal (cost 1 * 1 = 1).
        let d = Domain::new(&[4, 4]);
        let w = MarginalWorkload::from_subsets(d, vec![vec![0]], MarginalKind::Point);
        let sel = bmax_selection(&w);
        assert!(approx_eq(sel.objective, 1.0, 1e-12));
        assert_eq!(sel.cuboids, vec![vec![0]]);
    }

    #[test]
    fn bmax_trades_off_publication_count() {
        // Workload = both 1-way marginals of a 2x2 domain.  Options:
        // publish both (cost 2*1=2), publish the full table (cost 1*2=2),
        // so the optimum is 2.
        let d = Domain::new(&[2, 2]);
        let w = MarginalWorkload::all_k_way(d, 1, MarginalKind::Point);
        let sel = bmax_selection(&w);
        assert!(approx_eq(sel.objective, 2.0, 1e-12));
    }

    #[test]
    fn bmax_prefers_shared_parent_for_large_domains() {
        // Two 1-way marginals over [16, 16]: publishing both separately costs
        // 2*1 = 2; the full table costs 1*16 = 16, so both marginals are kept.
        let d = Domain::new(&[16, 16]);
        let w = MarginalWorkload::all_k_way(d, 1, MarginalKind::Point);
        let sel = bmax_selection(&w);
        assert!(approx_eq(sel.objective, 2.0, 1e-12));
        assert_eq!(sel.cuboids.len(), 2);
    }

    #[test]
    fn datacube_strategy_has_expected_sensitivity() {
        let d = Domain::new(&[4, 4, 2]);
        let w = MarginalWorkload::all_k_way(d, 2, MarginalKind::Point);
        let s = datacube_strategy(&w);
        let sel = bmax_selection(&w);
        // Each tuple contributes one cell per published cuboid.
        assert!(approx_eq(
            s.l2_sensitivity(),
            (sel.cuboids.len() as f64).sqrt(),
            1e-9
        ));
        assert_eq!(s.dim(), 32);
    }

    #[test]
    fn greedy_matches_exhaustive_on_small_case() {
        let d = Domain::new(&[4, 2, 2]);
        let w = MarginalWorkload::all_k_way(d.clone(), 1, MarginalKind::Point);
        let masks: Vec<u32> = w.subsets().iter().map(|s| subset_mask(s)).collect();
        let candidates: Vec<u32> = (0..(1u32 << 3)).collect();
        let (_, exhaustive) = exhaustive_search(&d, &masks, &candidates);
        let (_, greedy) = greedy_search(&d, &masks, &candidates);
        assert!(
            approx_eq(greedy, exhaustive, 1e-9),
            "greedy={greedy} exhaustive={exhaustive}"
        );
    }

    #[test]
    fn cuboid_matrix_shapes() {
        let d = Domain::new(&[3, 4]);
        let m = cuboid_matrix(&d, &[0]);
        assert_eq!(m.shape(), (3, 12));
        let full = cuboid_matrix(&d, &[0, 1]);
        assert_eq!(full.shape(), (12, 12));
        let empty = cuboid_matrix(&d, &[]);
        assert_eq!(empty.shape(), (1, 12));
    }
}
