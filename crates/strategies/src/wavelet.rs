//! The Haar wavelet strategy (Xiao et al.).
//!
//! For a 1D domain of `n = 2^k` cells the strategy asks the `n` Haar wavelet
//! coefficients: the total count plus, for every dyadic block, the difference
//! between its two halves (Fig. 2 of the paper shows the `n = 8` instance).
//! Any range query is a combination of `O(log n)` wavelet rows, which is why
//! the strategy excels on range workloads.  Multi-dimensional variants are
//! Kronecker products of the 1D matrices.

use crate::strategy::{Strategy, EXPLICIT_ENTRY_LIMIT};
use mm_linalg::Matrix;
use mm_workload::Domain;

/// Builds the explicit (unnormalised) Haar wavelet matrix for `n = 2^k` cells.
///
/// Row 0 is the total query; subsequent rows, from the coarsest block (size
/// `n`) to the finest (size 2), contain `+1` on the first half of their dyadic
/// block and `-1` on the second half.
pub fn haar_matrix(n: usize) -> Matrix {
    assert!(
        n.is_power_of_two(),
        "the Haar wavelet requires a power-of-two domain, got {n}"
    );
    let mut m = Matrix::zeros(n, n);
    for v in m.row_mut(0) {
        *v = 1.0;
    }
    let mut r = 1;
    let mut block = n;
    while block >= 2 {
        let half = block / 2;
        for start in (0..n).step_by(block) {
            let row = m.row_mut(r);
            for v in &mut row[start..start + half] {
                *v = 1.0;
            }
            for v in &mut row[start + half..start + block] {
                *v = -1.0;
            }
            r += 1;
        }
        block = half;
    }
    debug_assert_eq!(r, n);
    m
}

/// The 1D Haar wavelet strategy over `n = 2^k` cells.
///
/// The gram matrix is computed in closed form (O(n² log n)), so the strategy
/// scales to domains where the explicit `n×n` matrix would be unreasonably
/// large to keep around.
pub fn wavelet_1d(n: usize) -> Strategy {
    assert!(
        n.is_power_of_two(),
        "the Haar wavelet requires a power-of-two domain, got {n}"
    );
    let levels = n.trailing_zeros() as usize;
    // Closed-form gram: 1 from the total row plus, per dyadic level, +1 when
    // the two cells fall in the same half of their shared block, -1 when they
    // fall in different halves of the same block, 0 otherwise.
    let mut gram = Matrix::zeros(n, n);
    for i in 0..n {
        for j in i..n {
            let mut acc = 1.0;
            let mut block = n;
            while block >= 2 {
                let half = block / 2;
                if i / block == j / block {
                    let same_half = (i % block) / half == (j % block) / half;
                    acc += if same_half { 1.0 } else { -1.0 };
                }
                block = half;
            }
            gram[(i, j)] = acc;
            gram[(j, i)] = acc;
        }
    }
    let l2 = ((levels + 1) as f64).sqrt();
    let l1 = (levels + 1) as f64;
    let matrix = if n.saturating_mul(n) <= EXPLICIT_ENTRY_LIMIT {
        Some(haar_matrix(n))
    } else {
        None
    };
    Strategy::from_parts(format!("wavelet (n={n})"), matrix, gram, l2, l1, n)
}

/// Multi-dimensional Haar wavelet strategy: the Kronecker product of the
/// per-attribute 1D wavelet strategies (every attribute size must be a power
/// of two).
pub fn wavelet_strategy(domain: &Domain) -> Strategy {
    let factors: Vec<Strategy> = domain.sizes().iter().map(|&d| wavelet_1d(d)).collect();
    Strategy::kron(format!("wavelet on {domain}"), &factors)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mm_linalg::{approx_eq, ops};

    #[test]
    fn haar_matrix_matches_paper_example() {
        // Fig. 2 of the paper, n = 8.
        let m = haar_matrix(8);
        let expected = Matrix::from_rows(&[
            vec![1., 1., 1., 1., 1., 1., 1., 1.],
            vec![1., 1., 1., 1., -1., -1., -1., -1.],
            vec![1., 1., -1., -1., 0., 0., 0., 0.],
            vec![0., 0., 0., 0., 1., 1., -1., -1.],
            vec![1., -1., 0., 0., 0., 0., 0., 0.],
            vec![0., 0., 1., -1., 0., 0., 0., 0.],
            vec![0., 0., 0., 0., 1., -1., 0., 0.],
            vec![0., 0., 0., 0., 0., 0., 1., -1.],
        ])
        .unwrap();
        assert_eq!(m, expected);
    }

    #[test]
    fn haar_rows_are_orthogonal() {
        let m = haar_matrix(16);
        let outer = ops::outer_gram(&m);
        for i in 0..16 {
            for j in 0..16 {
                if i != j {
                    assert!(
                        approx_eq(outer[(i, j)], 0.0, 1e-12),
                        "rows {i},{j} not orthogonal"
                    );
                }
            }
        }
    }

    #[test]
    fn gram_matches_explicit() {
        for n in [2usize, 4, 8, 32] {
            let s = wavelet_1d(n);
            let g = ops::gram(&haar_matrix(n));
            for i in 0..n {
                for j in 0..n {
                    assert!(
                        approx_eq(s.gram()[(i, j)], g[(i, j)], 1e-12),
                        "n={n} ({i},{j}): {} vs {}",
                        s.gram()[(i, j)],
                        g[(i, j)]
                    );
                }
            }
        }
    }

    #[test]
    fn sensitivity_is_sqrt_log_plus_one() {
        let s = wavelet_1d(8);
        assert!(approx_eq(s.l2_sensitivity(), 2.0, 1e-12)); // sqrt(1 + 3)
        assert!(approx_eq(s.l1_sensitivity(), 4.0, 1e-12));
        let m = s.matrix().unwrap();
        assert!(approx_eq(m.max_col_norm_l2(), 2.0, 1e-12));
    }

    #[test]
    fn multi_dimensional_wavelet() {
        let d = Domain::new(&[4, 8]);
        let s = wavelet_strategy(&d);
        assert_eq!(s.dim(), 32);
        assert_eq!(s.rows(), 32);
        assert!(approx_eq(s.l2_sensitivity(), (3.0_f64).sqrt() * 2.0, 1e-12));
    }

    #[test]
    fn wavelet_full_rank() {
        let s = wavelet_1d(16);
        let eig = mm_linalg::decomp::SymmetricEigen::new(s.gram()).unwrap();
        assert_eq!(eig.rank(1e-9), 16);
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn non_power_of_two_panics() {
        wavelet_1d(6);
    }
}
