//! Structured (matrix-free) strategies: Haar wavelet and hierarchical trees
//! as [`LinearOperator`]s, with byte-serialisable descriptors.
//!
//! A dense [`Strategy`](crate::Strategy) stores its O(n²) gram matrix even
//! when the explicit matrix is dropped, which caps the served domain near
//! n ≈ 1024.  The two strategy families the paper leans on for range
//! workloads are sparse by construction, though: every row of the Haar
//! wavelet and of a k-ary hierarchy is a union of at most two constant runs
//! of ±1.  [`RunRowsOperator`] stores exactly those runs — O(n log n) total
//! — and applies them in the dense kernels' canonical order, so structured
//! and dense answers agree *bit for bit* (see [`mm_linalg::operator`] for
//! the contract; `tests/structured.rs` cross-validates).
//!
//! [`StructuredStrategy`] bundles an operator with the sensitivities the
//! noise backends calibrate against, computed with the *same expressions*
//! as the dense constructors ([`crate::wavelet::wavelet_1d`],
//! [`crate::hierarchical::hierarchical_1d`]) so both paths draw identically
//! scaled noise.  [`StrategyDescriptor`] is the few-byte persistent form:
//! the engine's structured store writes descriptors instead of n×n factors
//! and rebuilds the operator on load.

use crate::hierarchical::hierarchy_intervals;
use mm_linalg::{LinearOperator, Matrix};
use std::sync::Arc;

/// Maximum entry count for [`RunRowsOperator::materialize`] (mirrors
/// [`crate::strategy::EXPLICIT_ENTRY_LIMIT`]).
use crate::strategy::EXPLICIT_ENTRY_LIMIT;

/// One constant run of a sparse strategy row: cells `lo..=hi` all carry
/// `coeff` (always ±1 for the families here).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Run {
    /// First cell of the run (inclusive).
    pub lo: usize,
    /// Last cell of the run (inclusive).
    pub hi: usize,
    /// The constant coefficient over the run (never exactly zero).
    pub coeff: f64,
}

/// A strategy matrix stored as per-row lists of constant ±1 runs.
///
/// Storage is O(total runs) — 2 per Haar row, 1 per hierarchy row — and
/// applies cost O(total run length).  Runs within a row are ascending and
/// disjoint, which makes the sequential per-row accumulation bit-identical
/// to the dense width-1 kernel (it skips exactly the stored zeros).
#[derive(Debug, Clone)]
pub struct RunRowsOperator {
    n: usize,
    rows: Vec<Vec<Run>>,
}

impl RunRowsOperator {
    /// Builds an operator over `n` cells from per-row run lists.
    ///
    /// Panics when `n == 0`, a row is empty, a run is malformed (out of
    /// range, `lo > hi`, zero or non-finite coefficient), or a row's runs
    /// are not strictly ascending and disjoint.
    pub fn new(n: usize, rows: Vec<Vec<Run>>) -> Self {
        assert!(n > 0, "operator needs at least one cell");
        assert!(!rows.is_empty(), "operator needs at least one row");
        for row in &rows {
            assert!(!row.is_empty(), "strategy rows must be non-empty");
            let mut prev_end: Option<usize> = None;
            for run in row {
                assert!(
                    run.lo <= run.hi && run.hi < n,
                    "run ({}, {}) is malformed for {n} cells",
                    run.lo,
                    run.hi
                );
                assert!(
                    run.coeff != 0.0 && run.coeff.is_finite(),
                    "run coefficients must be non-zero and finite"
                );
                if let Some(end) = prev_end {
                    assert!(
                        end < run.lo,
                        "runs within a row must be ascending and disjoint"
                    );
                }
                prev_end = Some(run.hi);
            }
        }
        RunRowsOperator { n, rows }
    }

    /// Total number of stored runs (the operator's memory footprint).
    pub fn run_count(&self) -> usize {
        self.rows.iter().map(Vec::len).sum()
    }
}

impl LinearOperator for RunRowsOperator {
    fn dims(&self) -> (usize, usize) {
        (self.rows.len(), self.n)
    }

    fn apply(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.n, "apply: dimension mismatch");
        let mut out = Vec::with_capacity(self.rows.len());
        for row in &self.rows {
            // Sequential ascending accumulation over the row's non-zero
            // coefficients — exactly the dense width-1 kernel's order.
            let mut acc = 0.0;
            for run in row {
                for &xi in &x[run.lo..=run.hi] {
                    acc += run.coeff * xi;
                }
            }
            out.push(acc);
        }
        out
    }

    fn apply_transpose(&self, y: &[f64]) -> Vec<f64> {
        assert_eq!(
            y.len(),
            self.rows.len(),
            "apply_transpose: dimension mismatch"
        );
        let mut out = vec![0.0; self.n];
        for (row, &yr) in self.rows.iter().zip(y.iter()) {
            for run in row {
                for o in &mut out[run.lo..=run.hi] {
                    *o += run.coeff * yr;
                }
            }
        }
        out
    }

    fn gram_diag(&self) -> Option<Vec<f64>> {
        // ±1 coefficients square to exactly 1, so the diagonal is an exact
        // integer coverage count whatever the accumulation order.
        let mut out = vec![0.0; self.n];
        for row in &self.rows {
            for run in row {
                for o in &mut out[run.lo..=run.hi] {
                    *o += run.coeff * run.coeff;
                }
            }
        }
        Some(out)
    }

    fn materialize(&self) -> Option<Matrix> {
        if self.rows.len().saturating_mul(self.n) > EXPLICIT_ENTRY_LIMIT {
            return None;
        }
        let mut m = Matrix::zeros(self.rows.len(), self.n);
        for (r, row) in self.rows.iter().enumerate() {
            for run in row {
                for v in &mut m.row_mut(r)[run.lo..=run.hi] {
                    *v = run.coeff;
                }
            }
        }
        Some(m)
    }
}

/// The persistent identity of a structured strategy: a few bytes that
/// rebuild the full operator.  This is what the engine's structured store
/// writes instead of an n×n factor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StrategyDescriptor {
    /// The unnormalised Haar wavelet over `n = 2^k` cells
    /// ([`haar_strategy`]).
    Haar {
        /// Domain size (a power of two).
        n: usize,
    },
    /// The k-ary hierarchy of interval counts over `n` cells
    /// ([`hierarchical_strategy_structured`]).
    Hierarchical {
        /// Domain size.
        n: usize,
        /// Branching factor (≥ 2).
        branching: usize,
    },
}

impl StrategyDescriptor {
    /// Serialises the descriptor: a variant tag byte followed by its
    /// little-endian `u64` fields.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(17);
        match self {
            StrategyDescriptor::Haar { n } => {
                out.push(1u8);
                out.extend_from_slice(&(*n as u64).to_le_bytes());
            }
            StrategyDescriptor::Hierarchical { n, branching } => {
                out.push(2u8);
                out.extend_from_slice(&(*n as u64).to_le_bytes());
                out.extend_from_slice(&(*branching as u64).to_le_bytes());
            }
        }
        out
    }

    /// Parses [`StrategyDescriptor::encode`] output, rejecting unknown
    /// tags, truncated payloads, trailing bytes and parameters that
    /// [`StrategyDescriptor::instantiate`] would panic on — a corrupt store
    /// entry must degrade to "not present", never to a panic.
    pub fn decode(bytes: &[u8]) -> Option<StrategyDescriptor> {
        let (&tag, rest) = bytes.split_first()?;
        let u64_at =
            |chunk: &[u8]| -> Option<u64> { Some(u64::from_le_bytes(chunk.try_into().ok()?)) };
        match tag {
            1 if rest.len() == 8 => {
                let n = usize::try_from(u64_at(rest)?).ok()?;
                (n > 0 && n.is_power_of_two()).then_some(StrategyDescriptor::Haar { n })
            }
            2 if rest.len() == 16 => {
                let n = usize::try_from(u64_at(&rest[..8])?).ok()?;
                let branching = usize::try_from(u64_at(&rest[8..])?).ok()?;
                (n > 0 && branching >= 2)
                    .then_some(StrategyDescriptor::Hierarchical { n, branching })
            }
            _ => None,
        }
    }

    /// Rebuilds the full strategy this descriptor names.
    pub fn instantiate(&self) -> StructuredStrategy {
        match *self {
            StrategyDescriptor::Haar { n } => haar_strategy(n),
            StrategyDescriptor::Hierarchical { n, branching } => {
                hierarchical_strategy_structured(n, branching)
            }
        }
    }

    /// Domain size of the described strategy.
    pub fn dim(&self) -> usize {
        match *self {
            StrategyDescriptor::Haar { n } => n,
            StrategyDescriptor::Hierarchical { n, .. } => n,
        }
    }
}

/// A matrix-free strategy: an operator plus the calibration scalars the
/// noise backends need, and the descriptor that persists it.
///
/// The structured analogue of [`Strategy`](crate::Strategy) — it carries no
/// gram matrix at all; answering runs through conjugate gradient on the
/// normal equations instead of a dense factor.
#[derive(Debug, Clone)]
pub struct StructuredStrategy {
    name: String,
    operator: Arc<RunRowsOperator>,
    descriptor: StrategyDescriptor,
    l2_sensitivity: f64,
    l1_sensitivity: f64,
}

impl StructuredStrategy {
    /// Strategy name (matches the dense constructor's name for the same
    /// parameters).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The strategy matrix as a matrix-free operator.
    pub fn operator(&self) -> &Arc<RunRowsOperator> {
        &self.operator
    }

    /// The persistent descriptor.
    pub fn descriptor(&self) -> StrategyDescriptor {
        self.descriptor
    }

    /// Number of strategy queries (rows of `A`).
    pub fn rows(&self) -> usize {
        self.operator.dims().0
    }

    /// Number of cells (columns of `A`).
    pub fn dim(&self) -> usize {
        self.operator.dims().1
    }

    /// L2 sensitivity `‖A‖₂` (maximum column L2 norm, Prop. 1) — equal, bit
    /// for bit, to the dense constructor's value.
    pub fn l2_sensitivity(&self) -> f64 {
        self.l2_sensitivity
    }

    /// L1 sensitivity `‖A‖₁` (maximum column L1 norm).
    pub fn l1_sensitivity(&self) -> f64 {
        self.l1_sensitivity
    }
}

/// The unnormalised Haar wavelet strategy over `n = 2^k` cells as a
/// [`StructuredStrategy`]: 2 runs per detail row, O(n log n) apply, same
/// row order, name and sensitivities as [`crate::wavelet::wavelet_1d`].
///
/// Panics when `n` is not a power of two (like the dense constructor).
pub fn haar_strategy(n: usize) -> StructuredStrategy {
    assert!(
        n.is_power_of_two(),
        "the Haar wavelet requires a power-of-two domain, got {n}"
    );
    let mut rows = Vec::with_capacity(n);
    rows.push(vec![Run {
        lo: 0,
        hi: n - 1,
        coeff: 1.0,
    }]);
    let mut block = n;
    while block >= 2 {
        let half = block / 2;
        for start in (0..n).step_by(block) {
            rows.push(vec![
                Run {
                    lo: start,
                    hi: start + half - 1,
                    coeff: 1.0,
                },
                Run {
                    lo: start + half,
                    hi: start + block - 1,
                    coeff: -1.0,
                },
            ]);
        }
        block = half;
    }
    debug_assert_eq!(rows.len(), n);
    let levels = n.trailing_zeros() as usize;
    // Same expressions as `wavelet_1d`, so both paths calibrate identical
    // noise scales for the same privacy parameters.
    let l2 = ((levels + 1) as f64).sqrt();
    let l1 = (levels + 1) as f64;
    StructuredStrategy {
        name: format!("wavelet (n={n})"),
        operator: Arc::new(RunRowsOperator::new(n, rows)),
        descriptor: StrategyDescriptor::Haar { n },
        l2_sensitivity: l2,
        l1_sensitivity: l1,
    }
}

/// The k-ary hierarchical strategy over `n` cells as a
/// [`StructuredStrategy`]: 1 run per row (one per tree interval), same
/// interval order, name and sensitivities as
/// [`crate::hierarchical::hierarchical_1d`].
///
/// Panics when `n == 0` or `branching < 2` (like the dense constructor).
pub fn hierarchical_strategy_structured(n: usize, branching: usize) -> StructuredStrategy {
    let intervals = hierarchy_intervals(n, branching);
    let rows: Vec<Vec<Run>> = intervals
        .iter()
        .map(|&(lo, hi)| vec![Run { lo, hi, coeff: 1.0 }])
        .collect();
    // Each cell's column L1 norm is its covering-interval count; the same
    // per-cell counting `hierarchical_1d` does, without the gram.
    let mut counts = vec![0usize; n];
    for &(lo, hi) in &intervals {
        for c in counts.iter_mut().take(hi + 1).skip(lo) {
            *c += 1;
        }
    }
    let max_count = *counts.iter().max().expect("n > 0") as f64;
    StructuredStrategy {
        name: format!("hierarchical (b={branching}, n={n})"),
        operator: Arc::new(RunRowsOperator::new(n, rows)),
        descriptor: StrategyDescriptor::Hierarchical { n, branching },
        l2_sensitivity: max_count.sqrt(),
        l1_sensitivity: max_count,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hierarchical::hierarchical_1d;
    use crate::wavelet::{haar_matrix, wavelet_1d};
    use mm_linalg::ExplicitOperator;

    fn assert_bits_eq(a: &[f64], b: &[f64]) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.to_bits(), y.to_bits(), "{x} vs {y}");
        }
    }

    #[test]
    fn haar_operator_matches_dense_matrix_exactly() {
        for n in [2usize, 8, 32] {
            let s = haar_strategy(n);
            assert_eq!(s.operator().materialize().unwrap(), haar_matrix(n));
            assert_eq!(s.rows(), n);
            assert_eq!(s.dim(), n);
        }
    }

    #[test]
    fn haar_applies_match_dense_bitwise() {
        let n = 64;
        let s = haar_strategy(n);
        let dense = ExplicitOperator::new(haar_matrix(n));
        let x: Vec<f64> = (0..n).map(|i| 0.3 + (i as f64) * 0.017).collect();
        assert_bits_eq(&s.operator().apply(&x), &dense.apply(&x));
        let y: Vec<f64> = (0..n).map(|i| -1.0 + (i as f64) * 0.05).collect();
        assert_bits_eq(
            &s.operator().apply_transpose(&y),
            &dense.apply_transpose(&y),
        );
        assert_bits_eq(
            &s.operator().gram_diag().unwrap(),
            &dense.gram_diag().unwrap(),
        );
    }

    #[test]
    fn haar_sensitivities_match_dense_strategy_bitwise() {
        for n in [4usize, 16, 128] {
            let s = haar_strategy(n);
            let d = wavelet_1d(n);
            assert_eq!(s.l2_sensitivity().to_bits(), d.l2_sensitivity().to_bits());
            assert_eq!(s.l1_sensitivity().to_bits(), d.l1_sensitivity().to_bits());
            assert_eq!(s.name(), d.name());
        }
    }

    #[test]
    fn hierarchical_operator_matches_dense_strategy() {
        for (n, b) in [(8usize, 2usize), (7, 2), (16, 4)] {
            let s = hierarchical_strategy_structured(n, b);
            let d = hierarchical_1d(n, b);
            assert_eq!(s.rows(), d.rows());
            assert_eq!(
                s.operator().materialize().unwrap(),
                d.matrix().unwrap().clone()
            );
            assert_eq!(s.l2_sensitivity().to_bits(), d.l2_sensitivity().to_bits());
            assert_eq!(s.l1_sensitivity().to_bits(), d.l1_sensitivity().to_bits());
            assert_eq!(s.name(), d.name());
        }
    }

    #[test]
    fn hierarchical_applies_match_dense_bitwise() {
        let s = hierarchical_strategy_structured(13, 3);
        let dense = ExplicitOperator::new(s.operator().materialize().unwrap());
        let x: Vec<f64> = (0..13).map(|i| (i as f64) * 0.7 - 2.0).collect();
        assert_bits_eq(&s.operator().apply(&x), &dense.apply(&x));
        let y: Vec<f64> = (0..s.rows()).map(|i| 0.1 * (i as f64 + 1.0)).collect();
        assert_bits_eq(
            &s.operator().apply_transpose(&y),
            &dense.apply_transpose(&y),
        );
    }

    #[test]
    fn descriptors_round_trip() {
        for desc in [
            StrategyDescriptor::Haar { n: 1024 },
            StrategyDescriptor::Hierarchical {
                n: 999,
                branching: 3,
            },
        ] {
            assert_eq!(StrategyDescriptor::decode(&desc.encode()), Some(desc));
        }
    }

    #[test]
    fn decode_rejects_garbage() {
        assert_eq!(StrategyDescriptor::decode(&[]), None);
        assert_eq!(StrategyDescriptor::decode(&[9, 0, 0]), None);
        // Truncated payload.
        assert_eq!(StrategyDescriptor::decode(&[1, 0, 4]), None);
        // Trailing bytes.
        let mut enc = StrategyDescriptor::Haar { n: 8 }.encode();
        enc.push(0);
        assert_eq!(StrategyDescriptor::decode(&enc), None);
        // Parameters instantiate() would reject: non-power-of-two Haar,
        // branching < 2, n = 0.
        let mut bad = vec![1u8];
        bad.extend_from_slice(&6u64.to_le_bytes());
        assert_eq!(StrategyDescriptor::decode(&bad), None);
        let mut bad = vec![2u8];
        bad.extend_from_slice(&8u64.to_le_bytes());
        bad.extend_from_slice(&1u64.to_le_bytes());
        assert_eq!(StrategyDescriptor::decode(&bad), None);
    }

    #[test]
    fn instantiate_rebuilds_the_same_strategy() {
        let s = haar_strategy(16);
        let rebuilt = s.descriptor().instantiate();
        assert_eq!(rebuilt.name(), s.name());
        let x: Vec<f64> = (0..16).map(|i| i as f64).collect();
        assert_bits_eq(&rebuilt.operator().apply(&x), &s.operator().apply(&x));
    }

    #[test]
    fn large_haar_skips_materialization_but_applies() {
        // 2^13 = 8192: 8192² = 67M entries is over the cap, but the
        // operator itself is O(n log n) and applies fine.
        let s = haar_strategy(8192);
        assert!(s.operator().materialize().is_none());
        assert!(s.operator().run_count() < 2 * 8192 + 1);
        let x = vec![1.0; 8192];
        let y = s.operator().apply(&x);
        assert_eq!(y.len(), 8192);
        assert_eq!(y[0], 8192.0);
        assert_eq!(y[2], 0.0); // balanced detail row on constant data
    }

    #[test]
    #[should_panic(expected = "ascending and disjoint")]
    fn overlapping_runs_rejected() {
        RunRowsOperator::new(
            4,
            vec![vec![
                Run {
                    lo: 0,
                    hi: 2,
                    coeff: 1.0,
                },
                Run {
                    lo: 2,
                    hi: 3,
                    coeff: -1.0,
                },
            ]],
        );
    }
}
