//! The identity strategy: ask for every cell count directly.

use crate::strategy::Strategy;
use mm_linalg::Matrix;

/// The identity strategy over `n` cells.
///
/// Under the matrix mechanism it yields independent noisy cell counts from
/// which all workload queries are computed; it is optimal for the identity
/// workload but performs poorly for queries summing many cells (Example 4).
pub fn identity_strategy(n: usize) -> Strategy {
    assert!(n > 0, "identity strategy needs at least one cell");
    Strategy::from_parts(
        "identity",
        Some(Matrix::identity(n)),
        Matrix::identity(n),
        1.0,
        1.0,
        n,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_strategy_properties() {
        let s = identity_strategy(5);
        assert_eq!(s.dim(), 5);
        assert_eq!(s.rows(), 5);
        assert_eq!(s.l2_sensitivity(), 1.0);
        assert_eq!(s.l1_sensitivity(), 1.0);
        assert_eq!(s.gram(), &Matrix::identity(5));
    }

    #[test]
    #[should_panic(expected = "at least one cell")]
    fn zero_cells_panics() {
        identity_strategy(0);
    }
}
