//! Findings, the `ANALYSIS.json` writer (schema `mm-analysis/v1`), and the
//! CI gate — structured like `mm-bench::report`: a plain data model, a
//! hand-rolled JSON emitter, and a unit-tested pass/fail decision.

use crate::config::RULES;
use std::fmt::Write as _;

/// Finding severity after tier processing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Gates the build (strict tier).
    Error,
    /// Reported only (examples/tests tier).
    Warning,
}

/// What happened to a finding on its way through the engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Status {
    /// Unhandled: errors gate, warnings inform.
    Active,
    /// Silenced by an inline justified suppression.
    Suppressed { justification: String },
    /// Covered by an architectural allowlist entry.
    Allowlisted { reason: String },
}

/// One fully-processed finding.
#[derive(Debug, Clone)]
pub struct Finding {
    pub rule: String,
    pub path: String,
    pub line: usize,
    pub col: usize,
    pub function: Option<String>,
    pub message: String,
    pub severity: Severity,
    pub status: Status,
}

/// The complete result of one analysis run.
#[derive(Debug, Default)]
pub struct Report {
    pub files_scanned: usize,
    pub findings: Vec<Finding>,
}

impl Report {
    /// Sorts findings for stable output: path, then line, col, rule.
    pub fn sort(&mut self) {
        self.findings.sort_by(|a, b| {
            (&a.path, a.line, a.col, &a.rule).cmp(&(&b.path, b.line, b.col, &b.rule))
        });
    }

    /// Active error-severity findings: the set that gates the build.
    pub fn gating(&self) -> impl Iterator<Item = &Finding> {
        self.findings
            .iter()
            .filter(|f| f.severity == Severity::Error && f.status == Status::Active)
    }

    /// Active warning-severity findings.
    pub fn warnings(&self) -> impl Iterator<Item = &Finding> {
        self.findings
            .iter()
            .filter(|f| f.severity == Severity::Warning && f.status == Status::Active)
    }

    /// The process exit code: non-zero iff any unsuppressed error remains.
    pub fn exit_code(&self) -> i32 {
        i32::from(self.gating().next().is_some())
    }

    /// Human-readable diagnostics, one block per finding, plus a summary.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            let tag = match (&f.status, f.severity) {
                (Status::Active, Severity::Error) => "error",
                (Status::Active, Severity::Warning) => "warning",
                (Status::Suppressed { .. }, _) => "allowed(inline)",
                (Status::Allowlisted { .. }, _) => "allowed(list)",
            };
            let _ = writeln!(out, "{tag}[{}]: {}", f.rule, f.message);
            let _ = writeln!(out, "  --> {}:{}:{}", f.path, f.line, f.col);
            if let Some(func) = &f.function {
                let _ = writeln!(out, "  in: fn {func}");
            }
            match &f.status {
                Status::Suppressed { justification } => {
                    let _ = writeln!(out, "  why: {justification}");
                }
                Status::Allowlisted { reason } => {
                    let _ = writeln!(out, "  why: {reason}");
                }
                Status::Active => {}
            }
        }
        let errors = self.gating().count();
        let warnings = self.warnings().count();
        let allowed = self
            .findings
            .iter()
            .filter(|f| f.status != Status::Active)
            .count();
        let _ = writeln!(
            out,
            "mm-analysis: {} file(s) scanned, {errors} error(s), {warnings} warning(s), \
             {allowed} allowed",
            self.files_scanned
        );
        out
    }

    /// GitHub Actions job-summary markdown: the headline counts plus one
    /// line per active warning.  Warn-tier findings (examples, tests,
    /// benches) never gate the build, so without this the only way to see
    /// them was digging through the job log — the summary makes creeping
    /// warn-tier debt visible on every run.
    pub fn render_step_summary(&self) -> String {
        let mut out = String::new();
        let allowed = self
            .findings
            .iter()
            .filter(|f| f.status != Status::Active)
            .count();
        let _ = writeln!(out, "### mm-analysis\n");
        let _ = writeln!(out, "| files scanned | errors | warnings | allowed |");
        let _ = writeln!(out, "| --- | --- | --- | --- |");
        let _ = writeln!(
            out,
            "| {} | {} | {} | {allowed} |",
            self.files_scanned,
            self.gating().count(),
            self.warnings().count(),
        );
        let warnings: Vec<&Finding> = self.warnings().collect();
        if !warnings.is_empty() {
            let _ = writeln!(out, "\nActive warn-tier findings (non-gating):\n");
            for f in warnings {
                let _ = writeln!(
                    out,
                    "- `{}:{}` — {} [{}]",
                    f.path, f.line, f.message, f.rule
                );
            }
        }
        out
    }

    /// Serializes the report as `mm-analysis/v1` JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str("  \"schema\": \"mm-analysis/v1\",\n");
        let _ = writeln!(out, "  \"files_scanned\": {},", self.files_scanned);
        out.push_str("  \"rules\": [\n");
        for (i, r) in RULES.iter().enumerate() {
            let comma = if i + 1 < RULES.len() { "," } else { "" };
            let _ = writeln!(
                out,
                "    {{\"id\": {}, \"description\": {}}}{comma}",
                json_str(r.id),
                json_str(r.description)
            );
        }
        out.push_str("  ],\n");
        out.push_str("  \"findings\": [\n");
        for (i, f) in self.findings.iter().enumerate() {
            let comma = if i + 1 < self.findings.len() { "," } else { "" };
            let severity = match f.severity {
                Severity::Error => "error",
                Severity::Warning => "warning",
            };
            let (status, why) = match &f.status {
                Status::Active => ("active", None),
                Status::Suppressed { justification } => ("suppressed", Some(justification)),
                Status::Allowlisted { reason } => ("allowlisted", Some(reason)),
            };
            let mut obj = format!(
                "    {{\"rule\": {}, \"file\": {}, \"line\": {}, \"column\": {}, \
                 \"severity\": {}, \"status\": {}, \"message\": {}",
                json_str(&f.rule),
                json_str(&f.path),
                f.line,
                f.col,
                json_str(severity),
                json_str(status),
                json_str(&f.message),
            );
            if let Some(func) = &f.function {
                let _ = write!(obj, ", \"function\": {}", json_str(func));
            }
            if let Some(why) = why {
                let _ = write!(obj, ", \"justification\": {}", json_str(why));
            }
            let _ = writeln!(out, "{obj}}}{comma}");
        }
        out.push_str("  ],\n");
        let _ = writeln!(
            out,
            "  \"summary\": {{\"errors\": {}, \"warnings\": {}, \"suppressed\": {}, \
             \"allowlisted\": {}}}",
            self.gating().count(),
            self.warnings().count(),
            self.findings
                .iter()
                .filter(|f| matches!(f.status, Status::Suppressed { .. }))
                .count(),
            self.findings
                .iter()
                .filter(|f| matches!(f.status, Status::Allowlisted { .. }))
                .count(),
        );
        out.push_str("}\n");
        out
    }
}

/// JSON string escaping (quotes, backslashes, control characters).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(severity: Severity, status: Status) -> Finding {
        Finding {
            rule: "serve-panic-freedom".into(),
            path: "crates/serve/src/lib.rs".into(),
            line: 10,
            col: 5,
            function: Some("worker_loop".into()),
            message: "`.unwrap()` can panic".into(),
            severity,
            status,
        }
    }

    #[test]
    fn gate_fails_only_on_active_errors() {
        let mut r = Report::default();
        assert_eq!(r.exit_code(), 0, "clean tree passes");
        r.findings.push(finding(Severity::Warning, Status::Active));
        assert_eq!(r.exit_code(), 0, "warnings never gate");
        r.findings.push(finding(
            Severity::Error,
            Status::Suppressed {
                justification: "justified at the site".into(),
            },
        ));
        assert_eq!(r.exit_code(), 0, "suppressed errors do not gate");
        r.findings.push(finding(
            Severity::Error,
            Status::Allowlisted {
                reason: "architectural exception".into(),
            },
        ));
        assert_eq!(r.exit_code(), 0, "allowlisted errors do not gate");
        r.findings.push(finding(Severity::Error, Status::Active));
        assert_eq!(r.exit_code(), 1, "one active error fails the gate");
    }

    #[test]
    fn json_is_schema_v1_and_escapes() {
        let mut r = Report {
            files_scanned: 3,
            findings: vec![finding(Severity::Error, Status::Active)],
        };
        r.findings[0].message = "quote \" backslash \\ newline \n".into();
        let json = r.to_json();
        assert!(json.contains("\"schema\": \"mm-analysis/v1\""));
        assert!(json.contains("\"files_scanned\": 3"));
        assert!(json.contains("quote \\\" backslash \\\\ newline \\n"));
        assert!(json.contains("\"summary\": {\"errors\": 1, \"warnings\": 0"));
    }

    #[test]
    fn step_summary_counts_and_lists_warnings() {
        let mut r = Report {
            files_scanned: 5,
            findings: vec![
                finding(Severity::Warning, Status::Active),
                finding(
                    Severity::Error,
                    Status::Suppressed {
                        justification: "justified at the site".into(),
                    },
                ),
            ],
        };
        let md = r.render_step_summary();
        assert!(md.starts_with("### mm-analysis"));
        assert!(md.contains("| 5 | 0 | 1 | 1 |"), "{md}");
        assert!(md.contains("Active warn-tier findings"));
        assert!(md.contains("`crates/serve/src/lib.rs:10`"), "{md}");
        assert!(md.contains("[serve-panic-freedom]"), "{md}");
        // A clean tree renders the table alone, no findings section.
        r.findings.clear();
        let md = r.render_step_summary();
        assert!(md.contains("| 5 | 0 | 0 | 0 |"), "{md}");
        assert!(!md.contains("Active warn-tier"), "{md}");
    }

    #[test]
    fn sort_is_stable_by_position() {
        let mut r = Report::default();
        let mut a = finding(Severity::Error, Status::Active);
        a.path = "b.rs".into();
        let mut b = finding(Severity::Error, Status::Active);
        b.path = "a.rs".into();
        b.line = 99;
        r.findings.push(a);
        r.findings.push(b);
        r.sort();
        assert_eq!(r.findings[0].path, "a.rs");
    }

    #[test]
    fn text_rendering_carries_position_and_reason() {
        let r = Report {
            files_scanned: 1,
            findings: vec![finding(
                Severity::Error,
                Status::Suppressed {
                    justification: "lock poisoning recovered at every site".into(),
                },
            )],
        };
        let text = r.render_text();
        assert!(text.contains("--> crates/serve/src/lib.rs:10:5"));
        assert!(text.contains("in: fn worker_loop"));
        assert!(text.contains("why: lock poisoning recovered"));
    }
}
