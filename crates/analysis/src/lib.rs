#![forbid(unsafe_code)]
//! `mm-analysis`: the workspace invariant linter.
//!
//! The matrix mechanism's guarantees rest on contracts no type system
//! checks: noise must be charged to an accountant before it is drawn, and
//! results must be bit-identical across thread counts and persisted
//! round-trips.  This crate makes those contracts machine-checked — a
//! hand-rolled lexer ([`lexer`]), a per-file structural scan ([`scan`]), a
//! rule engine ([`rules`], catalogued in [`config`]), and a gated report
//! ([`report`]) emitted as `ANALYSIS.json` (schema `mm-analysis/v1`).
//!
//! Run it as `cargo run -p mm-analysis -- check`; CI fails on any
//! unsuppressed strict-tier finding.  Exceptions are either architectural
//! (the allowlist in [`config`]) or inline comments of the form
//! `mm-lint: allow(<rule>): <justification>` — a justification is
//! mandatory, and a malformed suppression is itself a finding.

pub mod config;
pub mod lexer;
pub mod report;
pub mod rules;
pub mod scan;

use config::{allow_for, known_rule, tier_for, Tier};
use report::{Finding, Report, Severity, Status};
use scan::SourceFile;
use std::path::{Path, PathBuf};

/// Analyzes one file's source text and appends its findings to `report`.
/// `rel_path` must be workspace-relative with `/` separators.
pub fn analyze_source(rel_path: &str, source: &str, report: &mut Report) {
    let tier = tier_for(rel_path);
    if tier == Tier::Skip {
        return;
    }
    report.files_scanned += 1;
    let file = SourceFile::parse(rel_path, source);

    for raw in rules::check_file(&file) {
        // In-crate `#[cfg(test)]` / `#[test]` code is exempt: tests exercise
        // failure paths on purpose, and the top-level `tests/` tree is the
        // (warn-only) tier that watches documentation-grade code.
        if tier == Tier::Strict && file.in_test_region(raw.line) {
            continue;
        }
        let function = file.enclosing_fn(raw.line).map(|f| f.name.clone());
        let status = if let Some(s) = file.suppression_for(raw.rule, raw.line) {
            Status::Suppressed {
                justification: s.justification.clone(),
            }
        } else if let Some(entry) = allow_for(raw.rule, &file.path, function.as_deref()) {
            Status::Allowlisted {
                reason: entry.reason.to_string(),
            }
        } else {
            Status::Active
        };
        report.findings.push(Finding {
            rule: raw.rule.to_string(),
            path: file.path.clone(),
            line: raw.line,
            col: raw.col,
            function,
            message: raw.message,
            severity: match tier {
                Tier::Strict => Severity::Error,
                _ => Severity::Warning,
            },
            status,
        });
    }

    // Malformed or unknown-rule suppressions are findings themselves: a bare
    // allow must never silently disable checking.
    for s in &file.suppressions {
        let problem = if s.malformed {
            Some(if s.rule.is_empty() {
                "suppression does not parse: expected `allow(<rule>): <justification>`".to_string()
            } else {
                format!(
                    "suppression for `{}` lacks a justification (at least 10 characters)",
                    s.rule
                )
            })
        } else if !known_rule(&s.rule) {
            Some(format!("suppression names unknown rule `{}`", s.rule))
        } else {
            None
        };
        if let Some(message) = problem {
            report.findings.push(Finding {
                rule: "lint-suppression".to_string(),
                path: file.path.clone(),
                line: s.line,
                col: 1,
                function: file.enclosing_fn(s.line).map(|f| f.name.clone()),
                message,
                severity: match tier {
                    Tier::Strict => Severity::Error,
                    _ => Severity::Warning,
                },
                status: Status::Active,
            });
        }
    }
}

/// Recursively collects the workspace `.rs` files under `root`, skipping
/// build output, VCS metadata, and the linter's own violation fixtures.
/// Paths are returned sorted, so scans (and `ANALYSIS.json`) are
/// deterministic regardless of directory enumeration order.
pub fn workspace_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        // The walk itself uses read_dir, but every collected path is sorted
        // below before anything order-dependent consumes it.
        let entries = match std::fs::read_dir(&dir) {
            Ok(e) => e,
            Err(_) => continue,
        };
        for entry in entries.flatten() {
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if name == "target" || name.starts_with('.') || name == "fixtures" {
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".rs") {
                files.push(path);
            }
        }
    }
    files.sort();
    Ok(files)
}

/// Runs the full analysis over the workspace rooted at `root`.
pub fn check_workspace(root: &Path) -> std::io::Result<Report> {
    let mut report = Report::default();
    for path in workspace_files(root)? {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let source = std::fs::read_to_string(&path)?;
        analyze_source(&rel, &source, &mut report);
    }
    report.sort();
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strict_findings_gate_and_warn_tier_does_not() {
        let bad = "fn f() { let x = backend.sample(rng, s, n); }\n#![forbid(unsafe_code)]\n";
        let mut report = Report::default();
        analyze_source("crates/core/src/x.rs", bad, &mut report);
        assert_eq!(report.exit_code(), 1);

        let mut warn_only = Report::default();
        analyze_source("examples/demo.rs", bad, &mut warn_only);
        assert_eq!(warn_only.exit_code(), 0);
        assert!(warn_only.warnings().count() > 0);
    }

    #[test]
    fn justified_suppression_passes_and_bare_one_is_a_finding() {
        let marker = "mm-lint:";
        let good = format!(
            "fn f() {{\n    // {marker} allow(charge-before-noise): one-shot mechanism API, \
             budget spent by construction\n    let x = backend.sample(rng, s, n);\n}}\n"
        );
        let mut report = Report::default();
        analyze_source("crates/core/src/x.rs", &good, &mut report);
        assert_eq!(report.exit_code(), 0);

        let bare = format!("fn f() {{\n    // {marker} allow(charge-before-noise)\n    let x = backend.sample(rng, s, n);\n}}\n");
        let mut report = Report::default();
        analyze_source("crates/core/src/x.rs", &bare, &mut report);
        // Both the unsuppressed finding and the malformed suppression gate.
        assert!(report.gating().count() >= 2);
    }

    #[test]
    fn unknown_rule_suppressions_are_findings() {
        let src = format!(
            "fn f() {{}} // {}: allow(no-such-rule): this rule does not exist anywhere\n",
            "mm-lint"
        );
        let mut report = Report::default();
        analyze_source("crates/core/src/x.rs", &src, &mut report);
        assert!(report
            .gating()
            .any(|f| f.rule == "lint-suppression" && f.message.contains("no-such-rule")));
    }

    #[test]
    fn test_regions_are_exempt_in_strict_tier() {
        let src =
            "#[cfg(test)]\nmod tests {\n    fn f() { let x = backend.sample(rng, s, n); }\n}\n";
        let mut report = Report::default();
        analyze_source("crates/core/src/x.rs", src, &mut report);
        assert_eq!(report.findings.len(), 0);
    }
}
