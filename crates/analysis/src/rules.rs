//! The rule implementations: token-pattern matchers over a [`SourceFile`].
//!
//! Each rule returns raw findings (rule id, position, message); the engine
//! in `lib.rs` applies tiers, test-region filtering, suppressions, and the
//! allowlist.  Patterns are lexical by design — the lexer guarantees they
//! never match inside strings or comments, and the few receiver-type
//! questions that matter (is this a HashMap?) are answered from same-file
//! declarations, which is exact for this workspace's style.

use crate::lexer::{Token, TokenKind};
use crate::scan::SourceFile;

/// A rule match before tier/suppression/allowlist processing.
#[derive(Debug, Clone)]
pub struct RawFinding {
    pub rule: &'static str,
    pub line: usize,
    pub col: usize,
    pub message: String,
}

/// Runs every rule whose scope covers `file`.
pub fn check_file(file: &SourceFile) -> Vec<RawFinding> {
    let mut out = Vec::new();
    charge_before_noise(file, &mut out);
    determinism_hygiene(file, &mut out);
    blessed_reduction(file, &mut out);
    serve_panic_freedom(file, &mut out);
    assert_on_input(file, &mut out);
    unsafe_forbidden(file, &mut out);
    out
}

fn starts_with_any(path: &str, prefixes: &[&str]) -> bool {
    prefixes.iter().any(|p| path.starts_with(p))
}

/// `tokens[i]` is an identifier called as a method: `recv.name(…)`.
fn is_method_call(tokens: &[Token], i: usize) -> bool {
    i > 0
        && tokens[i].kind == TokenKind::Ident
        && tokens[i - 1].kind == TokenKind::Punct('.')
        && matches!(
            tokens.get(i + 1).map(|t| t.kind),
            // Plain call or turbofish: `.sum::<f64>()`.
            Some(TokenKind::Punct('(')) | Some(TokenKind::Punct(':'))
        )
}

/// `tokens[i]` is an identifier directly invoked: `name(…)` (not `fn name`).
fn is_direct_call(tokens: &[Token], i: usize) -> bool {
    tokens[i].kind == TokenKind::Ident
        && tokens.get(i + 1).map(|t| t.kind) == Some(TokenKind::Punct('('))
        && !matches!(tokens.get(i.wrapping_sub(1)), Some(prev) if prev.text == "fn")
        // `fn name<R: Rng>(…)` — generic definitions have `<` before `(`,
        // so the `(` check above already excludes them.
        && tokens.get(i + 1).map(|t| t.kind) == Some(TokenKind::Punct('('))
}

/// `tokens[i]` is a macro invocation `name!(…)`.
fn is_macro(tokens: &[Token], i: usize) -> bool {
    tokens[i].kind == TokenKind::Ident
        && tokens.get(i + 1).map(|t| t.kind) == Some(TokenKind::Punct('!'))
}

/// Index of the `)` matching the `(` at `open`.
fn matching_paren(tokens: &[Token], open: usize) -> Option<usize> {
    let mut depth = 0usize;
    for (k, t) in tokens.iter().enumerate().skip(open) {
        match t.kind {
            TokenKind::Punct('(') => depth += 1,
            TokenKind::Punct(')') => {
                depth -= 1;
                if depth == 0 {
                    return Some(k);
                }
            }
            _ => {}
        }
    }
    None
}

/// Rule 1: any path that reaches a sampling call must be accounted.
fn charge_before_noise(file: &SourceFile, out: &mut Vec<RawFinding>) {
    if !starts_with_any(
        &file.path,
        &["crates/core", "crates/serve", "src/", "examples/", "tests/"],
    ) {
        return;
    }
    let tokens = &file.tokens;
    for (i, t) in tokens.iter().enumerate() {
        let hit = (t.text == "sample" && is_method_call(tokens, i))
            || ((t.text == "gaussian_noise" || t.text == "laplace_noise")
                && is_direct_call(tokens, i));
        if hit {
            out.push(RawFinding {
                rule: "charge-before-noise",
                line: t.line,
                col: t.col,
                message: format!(
                    "`{}` draws noise outside the accounted path: the enclosing function \
                     must charge the accountant first (or be allowlisted as an accounted \
                     path / sampling primitive)",
                    t.text
                ),
            });
        }
    }
}

/// Rule 2: nondeterminism sources in kernels, cache keys, and the store.
fn determinism_hygiene(file: &SourceFile, out: &mut Vec<RawFinding>) {
    if !starts_with_any(
        &file.path,
        &["crates/linalg", "crates/core/src/engine", "crates/workload"],
    ) {
        return;
    }
    let tokens = &file.tokens;
    const ITER_METHODS: &[&str] = &[
        "iter",
        "iter_mut",
        "keys",
        "values",
        "values_mut",
        "drain",
        "retain",
        "into_iter",
        "into_keys",
        "into_values",
    ];
    for (i, t) in tokens.iter().enumerate() {
        // Instant::now / SystemTime::now.
        if (t.text == "Instant" || t.text == "SystemTime")
            && tokens.get(i + 1).map(|t| t.kind) == Some(TokenKind::Punct(':'))
            && tokens.get(i + 3).map(|t| t.text.as_str()) == Some("now")
        {
            out.push(RawFinding {
                rule: "determinism-hygiene",
                line: t.line,
                col: t.col,
                message: format!(
                    "`{}::now()` is wall-clock-derived and must not flow into numeric \
                     kernels, cache keys, or the .mmplan store",
                    t.text
                ),
            });
        }
        // read_dir anywhere in scope: filesystem order is unspecified.
        if t.text == "read_dir" && (is_method_call(tokens, i) || is_direct_call(tokens, i)) {
            out.push(RawFinding {
                rule: "determinism-hygiene",
                line: t.line,
                col: t.col,
                message: "`read_dir` yields entries in unspecified order; sort before any \
                          order-dependent use"
                    .to_string(),
            });
        }
        // Iteration over a HashMap/HashSet-typed receiver declared in-file.
        if ITER_METHODS.contains(&t.text.as_str())
            && is_method_call(tokens, i)
            && i >= 2
            && tokens[i - 2].kind == TokenKind::Ident
            && file.map_idents.contains(&tokens[i - 2].text)
        {
            out.push(RawFinding {
                rule: "determinism-hygiene",
                line: t.line,
                col: t.col,
                message: format!(
                    "iteration over hash-ordered `{}` (`.{}()`): HashMap/HashSet order is \
                     nondeterministic across processes",
                    tokens[i - 2].text,
                    t.text
                ),
            });
        }
        // `for … in [&mut] <chain ending in a map ident> {`.
        if t.text == "in" && t.kind == TokenKind::Ident {
            let mut j = i + 1;
            while let Some(n) = tokens.get(j) {
                let skip = n.kind == TokenKind::Punct('&')
                    || (n.kind == TokenKind::Ident && n.text == "mut");
                if !skip {
                    break;
                }
                j += 1;
            }
            let mut last_ident: Option<&Token> = None;
            while let Some(n) = tokens.get(j) {
                match n.kind {
                    TokenKind::Ident => last_ident = Some(n),
                    TokenKind::Punct('.') => {}
                    _ => break,
                }
                j += 1;
            }
            if let (Some(ident), Some(term)) = (last_ident, tokens.get(j)) {
                if term.kind == TokenKind::Punct('{') && file.map_idents.contains(&ident.text) {
                    out.push(RawFinding {
                        rule: "determinism-hygiene",
                        line: ident.line,
                        col: ident.col,
                        message: format!(
                            "`for … in {}` iterates a HashMap/HashSet in nondeterministic \
                             order",
                            ident.text
                        ),
                    });
                }
            }
        }
    }
}

/// Rule 3: ad-hoc f64 reductions outside the blessed kernels.
fn blessed_reduction(file: &SourceFile, out: &mut Vec<RawFinding>) {
    if !starts_with_any(&file.path, &["crates/linalg", "crates/opt"]) {
        return;
    }
    let tokens = &file.tokens;
    for (i, t) in tokens.iter().enumerate() {
        if t.text == "sum" && is_method_call(tokens, i) {
            out.push(RawFinding {
                rule: "blessed-reduction",
                line: t.line,
                col: t.col,
                message: "ad-hoc `.sum()` accumulation: route f64 reductions through the \
                          fixed-block `ops` primitives (ops::dot / ops::sum) so results \
                          are bit-identical across refactors"
                    .to_string(),
            });
        }
        if t.text == "fold" && is_method_call(tokens, i) {
            // Inspect the fold arguments: float seed + non-max/min body.
            let Some(open) =
                (i + 1..tokens.len().min(i + 6)).find(|&k| tokens[k].kind == TokenKind::Punct('('))
            else {
                continue;
            };
            let Some(close) = matching_paren(tokens, open) else {
                continue;
            };
            let args = &tokens[open + 1..close];
            let float_seed = args.iter().take(4).any(|a| {
                a.kind == TokenKind::Literal && a.text.contains('.')
                    || (a.kind == TokenKind::Ident
                        && (a.text == "NEG_INFINITY" || a.text == "INFINITY"))
            });
            let order_independent = args
                .iter()
                .any(|a| a.kind == TokenKind::Ident && (a.text == "max" || a.text == "min"));
            if float_seed && !order_independent {
                out.push(RawFinding {
                    rule: "blessed-reduction",
                    line: t.line,
                    col: t.col,
                    message: "ad-hoc f64 `.fold()` accumulation: route through the \
                              fixed-block `ops` primitives (order-independent max/min \
                              folds are exempt)"
                        .to_string(),
                });
            }
        }
    }
}

/// Rule 4: panic-freedom in the serve tier and single-flight machinery.
fn serve_panic_freedom(file: &SourceFile, out: &mut Vec<RawFinding>) {
    if !(file.path.starts_with("crates/serve") || file.path == "crates/core/src/engine/cache.rs") {
        return;
    }
    let tokens = &file.tokens;
    const KEYWORDS: &[&str] = &[
        "let", "in", "mut", "return", "if", "while", "match", "else", "move", "ref", "box",
    ];
    for (i, t) in tokens.iter().enumerate() {
        if (t.text == "unwrap" || t.text == "expect") && is_method_call(tokens, i) {
            out.push(RawFinding {
                rule: "serve-panic-freedom",
                line: t.line,
                col: t.col,
                message: format!(
                    "`.{}()` can panic and poison every flight waiter: recover \
                     (`unwrap_or_else(PoisonError::into_inner)` for locks) or return a \
                     typed error",
                    t.text
                ),
            });
        }
        if (t.text == "panic"
            || t.text == "unreachable"
            || t.text == "todo"
            || t.text == "unimplemented")
            && is_macro(tokens, i)
        {
            out.push(RawFinding {
                rule: "serve-panic-freedom",
                line: t.line,
                col: t.col,
                message: format!(
                    "`{}!` in the serve tier: return a typed error instead",
                    t.text
                ),
            });
        }
        // Unguarded indexing: `ident[...]` (slice patterns and types have a
        // non-identifier or keyword before the bracket).
        if t.kind == TokenKind::Punct('[') && i > 0 {
            let prev = &tokens[i - 1];
            if prev.kind == TokenKind::Ident && !KEYWORDS.contains(&prev.text.as_str()) {
                out.push(RawFinding {
                    rule: "serve-panic-freedom",
                    line: t.line,
                    col: t.col,
                    message: format!(
                        "unguarded indexing `{}[…]` can panic: use `.get(…)` and handle \
                         the miss",
                        prev.text
                    ),
                });
            }
        }
    }
}

/// Rule 5 (satellite): assert! on user-controllable input in core/serve.
fn assert_on_input(file: &SourceFile, out: &mut Vec<RawFinding>) {
    if !starts_with_any(&file.path, &["crates/core", "crates/serve"]) {
        return;
    }
    let tokens = &file.tokens;
    for (i, t) in tokens.iter().enumerate() {
        if (t.text == "assert" || t.text == "assert_eq" || t.text == "assert_ne")
            && is_macro(tokens, i)
        {
            out.push(RawFinding {
                rule: "assert-on-input",
                line: t.line,
                col: t.col,
                message: format!(
                    "`{}!` in non-test mm-core/mm-serve code: validate user-controllable \
                     input with a typed MechanismError (internal invariants belong in \
                     `debug_assert!`)",
                    t.text
                ),
            });
        }
    }
}

/// Rule 6: no unsafe code anywhere; crate roots must forbid it.
fn unsafe_forbidden(file: &SourceFile, out: &mut Vec<RawFinding>) {
    let tokens = &file.tokens;
    for t in tokens {
        if t.kind == TokenKind::Ident && t.text == "unsafe" {
            out.push(RawFinding {
                rule: "unsafe-forbidden",
                line: t.line,
                col: t.col,
                message: "unsafe code is forbidden workspace-wide".to_string(),
            });
        }
    }
    let is_crate_root = file.path.ends_with("src/lib.rs") || file.path.ends_with("src/main.rs");
    if is_crate_root {
        // Look for the token run `# ! [ forbid ( unsafe_code ) ]`.
        let has_forbid = tokens.windows(8).any(|w| {
            w[0].kind == TokenKind::Punct('#')
                && w[1].kind == TokenKind::Punct('!')
                && w[2].kind == TokenKind::Punct('[')
                && w[3].text == "forbid"
                && w[4].kind == TokenKind::Punct('(')
                && w[5].text == "unsafe_code"
                && w[6].kind == TokenKind::Punct(')')
                && w[7].kind == TokenKind::Punct(']')
        });
        if !has_forbid {
            out.push(RawFinding {
                rule: "unsafe-forbidden",
                line: 1,
                col: 1,
                message: "crate root is missing `#![forbid(unsafe_code)]`".to_string(),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn findings(path: &str, src: &str) -> Vec<RawFinding> {
        check_file(&SourceFile::parse(path, src))
    }

    #[test]
    fn noise_calls_are_flagged_but_definitions_are_not() {
        let src = "#![forbid(unsafe_code)]\nfn leak(rng: &mut R) { let n = backend.sample(rng, s, p); }\nfn gaussian_noise(rng: &mut R) {}\n";
        let hits = findings("crates/core/src/bad.rs", src);
        let noise: Vec<_> = hits
            .iter()
            .filter(|f| f.rule == "charge-before-noise")
            .collect();
        assert_eq!(noise.len(), 1);
        assert_eq!(noise[0].line, 2);
    }

    #[test]
    fn map_iteration_and_clocks_are_flagged_in_scope_only() {
        let src = "struct C { map: HashMap<u64, T> }\nfn f(c: &C) { for v in c.map { use_it(v); } let t = Instant::now(); }\n";
        let in_scope = findings("crates/core/src/engine/x.rs", src);
        assert!(in_scope
            .iter()
            .any(|f| f.rule == "determinism-hygiene" && f.message.contains("for … in map")));
        assert!(in_scope
            .iter()
            .any(|f| f.rule == "determinism-hygiene" && f.message.contains("Instant")));
        let out_of_scope = findings("crates/data/src/x.rs", src);
        assert!(out_of_scope.iter().all(|f| f.rule != "determinism-hygiene"));
    }

    #[test]
    fn sums_are_flagged_but_max_folds_are_exempt() {
        let src = "fn f(xs: &[f64]) -> f64 { let a: f64 = xs.iter().sum(); let m = xs.iter().fold(f64::NEG_INFINITY, |a, &b| a.max(b)); let s = xs.iter().fold(0.0, |a, &b| a + b); a + m + s }\n";
        let hits = findings("crates/opt/src/x.rs", src);
        let blessed: Vec<_> = hits
            .iter()
            .filter(|f| f.rule == "blessed-reduction")
            .collect();
        assert_eq!(blessed.len(), 2, "sum + plain fold, not the max fold");
    }

    #[test]
    fn serve_panics_and_indexing_are_flagged() {
        let src = "fn f(xs: &[f64]) { let a = lock.unwrap(); let b = xs[0]; panic!(\"boom\"); }\n";
        let hits = findings("crates/serve/src/x.rs", src);
        let p: Vec<_> = hits
            .iter()
            .filter(|f| f.rule == "serve-panic-freedom")
            .collect();
        assert_eq!(p.len(), 3);
        // Same code outside the serve tier is fine for this rule.
        assert!(findings("crates/linalg/src/x.rs", src)
            .iter()
            .all(|f| f.rule != "serve-panic-freedom"));
    }

    #[test]
    fn asserts_flagged_in_core_but_not_debug_asserts() {
        let src = "fn f(x: f64) { assert!(x > 0.0); debug_assert!(x.is_finite()); }\n";
        let hits = findings("crates/core/src/x.rs", src);
        let a: Vec<_> = hits
            .iter()
            .filter(|f| f.rule == "assert-on-input")
            .collect();
        assert_eq!(a.len(), 1);
    }

    #[test]
    fn missing_forbid_attribute_is_flagged_on_crate_roots() {
        let with = "#![forbid(unsafe_code)]\npub fn ok() {}\n";
        let without = "pub fn ok() {}\n";
        assert!(findings("crates/x/src/lib.rs", with)
            .iter()
            .all(|f| f.rule != "unsafe-forbidden"));
        assert!(findings("crates/x/src/lib.rs", without)
            .iter()
            .any(|f| f.rule == "unsafe-forbidden"));
        // Non-root files don't need the attribute.
        assert!(findings("crates/x/src/inner.rs", without)
            .iter()
            .all(|f| f.rule != "unsafe-forbidden"));
    }
}
