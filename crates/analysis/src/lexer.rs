//! A hand-rolled Rust lexer, just deep enough for lint-grade scanning.
//!
//! The goal is *not* a faithful grammar: it is to classify every byte of a
//! source file as code, comment, or literal so the rule engine can match
//! identifier/punctuation patterns without being fooled by strings or
//! doc-comments, and so suppression comments can be recovered with exact
//! line numbers.  Raw strings, nested block comments, byte strings, char
//! literals vs. lifetimes, and numeric literals are all handled; everything
//! else is a single-character punctuation token.

/// What a token is, at the granularity the rules need.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`fn`, `unsafe`, `sample`, …).
    Ident,
    /// Any literal: string, raw string, byte string, char, or number.
    /// Rule patterns never look inside literals.
    Literal,
    /// A lifetime (`'a`, `'static`).
    Lifetime,
    /// One punctuation character (`.`, `(`, `!`, `[`, …).
    Punct(char),
}

/// One code token with its position (1-based line and column).
#[derive(Debug, Clone)]
pub struct Token {
    pub kind: TokenKind,
    pub text: String,
    pub line: usize,
    pub col: usize,
}

/// One comment (line or block) with the line it starts on.  Comments are
/// kept out of the token stream but retained for suppression parsing.
#[derive(Debug, Clone)]
pub struct Comment {
    pub text: String,
    pub line: usize,
}

/// Lexer output: the code tokens and the comments, separately.
#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Token>,
    pub comments: Vec<Comment>,
}

/// Tokenizes `source`, never failing: unrecognized bytes become punctuation.
pub fn lex(source: &str) -> Lexed {
    let bytes: Vec<char> = source.chars().collect();
    let mut out = Lexed::default();
    let mut i = 0;
    let mut line = 1;
    let mut col = 1;

    // Advances the cursor over `n` chars, maintaining line/col.
    macro_rules! bump {
        ($n:expr) => {
            for _ in 0..$n {
                if i < bytes.len() {
                    if bytes[i] == '\n' {
                        line += 1;
                        col = 1;
                    } else {
                        col += 1;
                    }
                    i += 1;
                }
            }
        };
    }

    while i < bytes.len() {
        let c = bytes[i];
        let (start_line, start_col) = (line, col);

        // Whitespace.
        if c.is_whitespace() {
            bump!(1);
            continue;
        }

        // Line comment (also captures doc comments `///` and `//!`).
        if c == '/' && bytes.get(i + 1) == Some(&'/') {
            let mut text = String::new();
            while i < bytes.len() && bytes[i] != '\n' {
                text.push(bytes[i]);
                bump!(1);
            }
            out.comments.push(Comment {
                text,
                line: start_line,
            });
            continue;
        }

        // Block comment, nesting-aware.
        if c == '/' && bytes.get(i + 1) == Some(&'*') {
            let mut text = String::new();
            let mut depth = 0usize;
            while i < bytes.len() {
                if bytes[i] == '/' && bytes.get(i + 1) == Some(&'*') {
                    depth += 1;
                    text.push_str("/*");
                    bump!(2);
                } else if bytes[i] == '*' && bytes.get(i + 1) == Some(&'/') {
                    depth -= 1;
                    text.push_str("*/");
                    bump!(2);
                    if depth == 0 {
                        break;
                    }
                } else {
                    text.push(bytes[i]);
                    bump!(1);
                }
            }
            out.comments.push(Comment {
                text,
                line: start_line,
            });
            continue;
        }

        // Raw strings r"..." / r#"..."# / br#"..."# and plain/byte strings.
        let is_raw_start = (c == 'r' || c == 'b') && {
            let mut j = i;
            if bytes[j] == 'b' && bytes.get(j + 1) == Some(&'r') {
                j += 1;
            }
            bytes[j] == 'r' && matches!(bytes.get(j + 1), Some(&'"') | Some(&'#'))
        };
        if is_raw_start {
            let mut j = i;
            let mut text = String::new();
            if bytes[j] == 'b' {
                text.push('b');
                j += 1;
            }
            text.push('r');
            j += 1;
            let mut hashes = 0;
            while bytes.get(j) == Some(&'#') {
                hashes += 1;
                text.push('#');
                j += 1;
            }
            if bytes.get(j) == Some(&'"') {
                text.push('"');
                j += 1;
                // Scan for closing `"` followed by `hashes` hashes.
                loop {
                    match bytes.get(j) {
                        None => break,
                        Some(&'"') => {
                            let mut k = j + 1;
                            let mut seen = 0;
                            while seen < hashes && bytes.get(k) == Some(&'#') {
                                seen += 1;
                                k += 1;
                            }
                            text.push('"');
                            for _ in 0..seen {
                                text.push('#');
                            }
                            j = k;
                            if seen == hashes {
                                break;
                            }
                        }
                        Some(&ch) => {
                            text.push(ch);
                            j += 1;
                        }
                    }
                }
                let consumed = j - i;
                bump!(consumed);
                out.tokens.push(Token {
                    kind: TokenKind::Literal,
                    text,
                    line: start_line,
                    col: start_col,
                });
                continue;
            }
            // `r` or `br` not actually starting a raw string: fall through to
            // the identifier path below.
        }

        // Plain or byte string literal.
        if c == '"' || (c == 'b' && bytes.get(i + 1) == Some(&'"')) {
            let mut text = String::new();
            if c == 'b' {
                text.push('b');
                bump!(1);
            }
            text.push('"');
            bump!(1);
            while i < bytes.len() {
                let ch = bytes[i];
                text.push(ch);
                if ch == '\\' {
                    bump!(1);
                    if i < bytes.len() {
                        text.push(bytes[i]);
                        bump!(1);
                    }
                    continue;
                }
                bump!(1);
                if ch == '"' {
                    break;
                }
            }
            out.tokens.push(Token {
                kind: TokenKind::Literal,
                text,
                line: start_line,
                col: start_col,
            });
            continue;
        }

        // Char literal vs. lifetime.
        if c == '\'' {
            // A lifetime is `'ident` NOT followed by a closing quote.
            let next_is_ident =
                matches!(bytes.get(i + 1), Some(ch) if ch.is_alphabetic() || *ch == '_');
            let char_lit = if next_is_ident {
                // `'a'` is a char literal; `'a` / `'static` are lifetimes.
                bytes.get(i + 2) == Some(&'\'')
            } else {
                true
            };
            if char_lit {
                let mut text = String::from("'");
                bump!(1);
                while i < bytes.len() {
                    let ch = bytes[i];
                    text.push(ch);
                    if ch == '\\' {
                        bump!(1);
                        if i < bytes.len() {
                            text.push(bytes[i]);
                            bump!(1);
                        }
                        continue;
                    }
                    bump!(1);
                    if ch == '\'' {
                        break;
                    }
                }
                out.tokens.push(Token {
                    kind: TokenKind::Literal,
                    text,
                    line: start_line,
                    col: start_col,
                });
            } else {
                let mut text = String::from("'");
                bump!(1);
                while i < bytes.len() && (bytes[i].is_alphanumeric() || bytes[i] == '_') {
                    text.push(bytes[i]);
                    bump!(1);
                }
                out.tokens.push(Token {
                    kind: TokenKind::Lifetime,
                    text,
                    line: start_line,
                    col: start_col,
                });
            }
            continue;
        }

        // Numeric literal.  `1.0e-4`, `0xff`, `1_000`, `2.5f64` — but `1..2`
        // and `1.max(…)` keep their dots as punctuation.
        if c.is_ascii_digit() {
            let mut text = String::new();
            while i < bytes.len() && (bytes[i].is_alphanumeric() || bytes[i] == '_') {
                text.push(bytes[i]);
                bump!(1);
            }
            if bytes.get(i) == Some(&'.')
                && matches!(bytes.get(i + 1), Some(ch) if ch.is_ascii_digit())
            {
                text.push('.');
                bump!(1);
                while i < bytes.len() && (bytes[i].is_alphanumeric() || bytes[i] == '_') {
                    text.push(bytes[i]);
                    bump!(1);
                }
            }
            // Exponent sign: `1.0e-4` leaves us after `e`; glue `-4` on.
            if (text.ends_with('e') || text.ends_with('E'))
                && matches!(bytes.get(i), Some(&'+') | Some(&'-'))
                && matches!(bytes.get(i + 1), Some(ch) if ch.is_ascii_digit())
            {
                text.push(bytes[i]);
                bump!(1);
                while i < bytes.len() && (bytes[i].is_alphanumeric() || bytes[i] == '_') {
                    text.push(bytes[i]);
                    bump!(1);
                }
            }
            out.tokens.push(Token {
                kind: TokenKind::Literal,
                text,
                line: start_line,
                col: start_col,
            });
            continue;
        }

        // Identifier / keyword.
        if c.is_alphabetic() || c == '_' {
            let mut text = String::new();
            while i < bytes.len() && (bytes[i].is_alphanumeric() || bytes[i] == '_') {
                text.push(bytes[i]);
                bump!(1);
            }
            out.tokens.push(Token {
                kind: TokenKind::Ident,
                text,
                line: start_line,
                col: start_col,
            });
            continue;
        }

        // Single punctuation character.
        out.tokens.push(Token {
            kind: TokenKind::Punct(c),
            text: c.to_string(),
            line: start_line,
            col: start_col,
        });
        bump!(1);
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn strings_and_comments_are_not_code() {
        let src = r##"
            // unwrap in a comment
            /* nested /* unwrap */ still comment */
            let s = "call .unwrap() here";
            let r = r#"raw "unwrap" string"#;
            let b = b"unwrap";
            real_ident();
        "##;
        let names = idents(src);
        assert!(names.contains(&"real_ident".to_string()));
        assert!(!names.contains(&"unwrap".to_string()));
        let lexed = lex(src);
        assert_eq!(lexed.comments.len(), 2);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let lexed = lex("fn f<'a>(x: &'a str) { let c = 'x'; let s = 'static; }");
        let lifetimes: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .map(|t| t.text.clone())
            .collect();
        assert!(lifetimes.contains(&"'a".to_string()));
        assert!(lifetimes.iter().any(|l| l == "'static"));
        assert!(lexed
            .tokens
            .iter()
            .any(|t| t.kind == TokenKind::Literal && t.text == "'x'"));
    }

    #[test]
    fn numbers_do_not_eat_method_calls_or_ranges() {
        let lexed = lex("let x = 1.0e-4; let y = 1.max(2); for i in 0..8 {}");
        assert!(lexed
            .tokens
            .iter()
            .any(|t| t.kind == TokenKind::Literal && t.text == "1.0e-4"));
        assert!(lexed
            .tokens
            .iter()
            .any(|t| t.kind == TokenKind::Ident && t.text == "max"));
        let dots = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Punct('.'))
            .count();
        assert_eq!(dots, 3, "1.max dot plus the .. range");
    }

    #[test]
    fn line_and_column_positions_are_one_based() {
        let lexed = lex("a\n  bee");
        assert_eq!((lexed.tokens[0].line, lexed.tokens[0].col), (1, 1));
        assert_eq!((lexed.tokens[1].line, lexed.tokens[1].col), (2, 3));
    }
}
