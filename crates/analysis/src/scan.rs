//! Per-file source model: tokens plus the structure the rules need —
//! function spans, `#[cfg(test)]`/`#[test]` regions, lint suppressions, and
//! the set of identifiers declared with hash-map/-set types.

use crate::lexer::{lex, Comment, Token, TokenKind};
use std::collections::BTreeSet;

/// An inline suppression parsed from a comment of the form
/// `mm-lint: allow(<rule>): <justification>` (see README "Static analysis").
/// It covers the comment's own line and the following line, so it can sit
/// either at the end of the offending line or alone on the line above it.
#[derive(Debug, Clone)]
pub struct Suppression {
    pub rule: String,
    pub justification: String,
    pub line: usize,
    /// Set when the justification is missing or too thin to mean anything;
    /// the engine reports these as findings instead of honoring them.
    pub malformed: bool,
}

/// A named function item and the line span of its body.
#[derive(Debug, Clone)]
pub struct FnSpan {
    pub name: String,
    pub start_line: usize,
    pub end_line: usize,
}

/// One scanned source file.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path with `/` separators.
    pub path: String,
    pub tokens: Vec<Token>,
    pub comments: Vec<Comment>,
    pub functions: Vec<FnSpan>,
    /// Line ranges (inclusive) of test-only code: `#[cfg(test)]` items and
    /// `#[test]` functions.
    pub test_regions: Vec<(usize, usize)>,
    pub suppressions: Vec<Suppression>,
    /// Identifiers declared in this file with a `HashMap<…>` / `HashSet<…>`
    /// type annotation (fields, lets, params) — the receivers whose
    /// iteration order is nondeterministic.
    pub map_idents: BTreeSet<String>,
}

impl SourceFile {
    /// Parses `source` into the model.  `path` should be workspace-relative.
    pub fn parse(path: &str, source: &str) -> SourceFile {
        let lexed = lex(source);
        let functions = find_functions(&lexed.tokens);
        let test_regions = find_test_regions(&lexed.tokens);
        let suppressions = parse_suppressions(&lexed.comments);
        let map_idents = find_map_idents(&lexed.tokens);
        SourceFile {
            path: path.replace('\\', "/"),
            tokens: lexed.tokens,
            comments: lexed.comments,
            functions,
            test_regions,
            suppressions,
            map_idents,
        }
    }

    /// True when `line` falls in test-only code.
    pub fn in_test_region(&self, line: usize) -> bool {
        self.test_regions
            .iter()
            .any(|&(s, e)| line >= s && line <= e)
    }

    /// The innermost named function containing `line`, if any.
    pub fn enclosing_fn(&self, line: usize) -> Option<&FnSpan> {
        self.functions
            .iter()
            .filter(|f| line >= f.start_line && line <= f.end_line)
            .min_by_key(|f| f.end_line - f.start_line)
    }

    /// The well-formed suppression covering `line` for `rule`, if any.
    pub fn suppression_for(&self, rule: &str, line: usize) -> Option<&Suppression> {
        self.suppressions
            .iter()
            .find(|s| !s.malformed && s.rule == rule && (s.line == line || s.line + 1 == line))
    }
}

/// Finds `fn name … { … }` items and records their body line spans.  Bodies
/// are delimited by brace matching from the first `{` after the signature; a
/// trait method ending in `;` has no span.  Nested functions produce nested
/// spans; `enclosing_fn` picks the innermost.
fn find_functions(tokens: &[Token]) -> Vec<FnSpan> {
    let mut spans = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let is_fn = tokens[i].kind == TokenKind::Ident && tokens[i].text == "fn";
        if !is_fn {
            i += 1;
            continue;
        }
        let Some(name_tok) = tokens.get(i + 1) else {
            break;
        };
        if name_tok.kind != TokenKind::Ident {
            i += 1;
            continue;
        }
        let name = name_tok.text.clone();
        // Scan forward to the body `{` or the trait-declaration `;`.  The
        // signature cannot contain braces, so the first of the two wins.
        let mut j = i + 2;
        let mut body_start = None;
        while let Some(t) = tokens.get(j) {
            match t.kind {
                TokenKind::Punct('{') => {
                    body_start = Some(j);
                    break;
                }
                TokenKind::Punct(';') => break,
                _ => {}
            }
            j += 1;
        }
        if let Some(open) = body_start {
            if let Some(close) = matching_brace(tokens, open) {
                spans.push(FnSpan {
                    name,
                    start_line: tokens[i].line,
                    end_line: tokens[close].line,
                });
            }
        }
        i += 1;
    }
    spans
}

/// Index of the `}` matching the `{` at `open`.
fn matching_brace(tokens: &[Token], open: usize) -> Option<usize> {
    let mut depth = 0usize;
    for (k, t) in tokens.iter().enumerate().skip(open) {
        match t.kind {
            TokenKind::Punct('{') => depth += 1,
            TokenKind::Punct('}') => {
                depth -= 1;
                if depth == 0 {
                    return Some(k);
                }
            }
            _ => {}
        }
    }
    None
}

/// Line spans of `#[cfg(test)]`-gated items and `#[test]` functions.
fn find_test_regions(tokens: &[Token]) -> Vec<(usize, usize)> {
    let mut regions = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        // Match `#[…]` attributes and decide whether they are test markers.
        if tokens[i].kind != TokenKind::Punct('#') {
            i += 1;
            continue;
        }
        let Some(open) = tokens.get(i + 1) else {
            break;
        };
        if open.kind != TokenKind::Punct('[') {
            i += 1;
            continue;
        }
        // Collect the attribute tokens up to the matching `]`.
        let mut j = i + 2;
        let mut depth = 1usize;
        let mut attr = Vec::new();
        while let Some(t) = tokens.get(j) {
            match t.kind {
                TokenKind::Punct('[') => depth += 1,
                TokenKind::Punct(']') => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            attr.push(t.text.as_str());
            j += 1;
        }
        let is_test_attr =
            attr == ["test"] || (attr.first() == Some(&"cfg") && attr.contains(&"test"));
        if !is_test_attr {
            i = j + 1;
            continue;
        }
        // The attribute gates the next item: find its body braces (or `;`).
        let mut k = j + 1;
        // Skip any further attributes on the same item.
        while tokens.get(k).map(|t| t.kind) == Some(TokenKind::Punct('#'))
            && tokens.get(k + 1).map(|t| t.kind) == Some(TokenKind::Punct('['))
        {
            let mut depth = 0usize;
            while let Some(t) = tokens.get(k) {
                match t.kind {
                    TokenKind::Punct('[') => depth += 1,
                    TokenKind::Punct(']') => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                k += 1;
            }
            k += 1;
        }
        let mut body = None;
        let mut m = k;
        while let Some(t) = tokens.get(m) {
            match t.kind {
                TokenKind::Punct('{') => {
                    body = Some(m);
                    break;
                }
                TokenKind::Punct(';') => break,
                _ => {}
            }
            m += 1;
        }
        if let Some(open) = body {
            if let Some(close) = matching_brace(tokens, open) {
                regions.push((tokens[i].line, tokens[close].line));
                i = close + 1;
                continue;
            }
        }
        i = m + 1;
    }
    regions
}

/// Parses `mm-lint: allow(<rule>)` suppressions out of comments.  Everything
/// after the closing parenthesis — minus leading `:`/`-`/`—` separators — is
/// the justification; fewer than 10 characters marks the suppression
/// malformed (a bare allow with no reason is itself a finding).
fn parse_suppressions(comments: &[Comment]) -> Vec<Suppression> {
    let marker = "mm-lint:";
    let mut out = Vec::new();
    for c in comments {
        // Doc comments never suppress: documentation is free to *mention*
        // the syntax (README examples, rule catalogues) without disabling
        // checks.  Suppressions must be plain `//` or `/* */` comments.
        let is_doc = c.text.starts_with("///")
            || c.text.starts_with("//!")
            || c.text.starts_with("/**")
            || c.text.starts_with("/*!");
        if is_doc {
            continue;
        }
        let Some(pos) = c.text.find(marker) else {
            continue;
        };
        let rest = c.text[pos + marker.len()..].trim_start();
        let Some(rest) = rest.strip_prefix("allow(") else {
            out.push(Suppression {
                rule: String::new(),
                justification: String::new(),
                line: c.line,
                malformed: true,
            });
            continue;
        };
        let Some(close) = rest.find(')') else {
            out.push(Suppression {
                rule: String::new(),
                justification: String::new(),
                line: c.line,
                malformed: true,
            });
            continue;
        };
        let rule = rest[..close].trim().to_string();
        let mut justification = rest[close + 1..].trim();
        justification = justification
            .trim_start_matches([':', '-', '—', ' '])
            .trim();
        let malformed = rule.is_empty() || justification.chars().count() < 10;
        out.push(Suppression {
            rule,
            justification: justification.to_string(),
            line: c.line,
            malformed,
        });
    }
    out
}

/// Identifiers annotated with `HashMap<` / `HashSet<` types in this file:
/// `name: HashMap<…>` (fields, lets, params) and
/// `let name = HashMap::new()` / `HashSet::new()` bindings.
fn find_map_idents(tokens: &[Token]) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    // `name : [& (mut | 'a)*] HashMap` — skip reference sigils and lifetimes
    // between the colon and the type head.
    for (i, t) in tokens.iter().enumerate() {
        if t.kind != TokenKind::Punct(':') || i == 0 {
            continue;
        }
        let Some(prev) = tokens.get(i - 1) else {
            continue;
        };
        if prev.kind != TokenKind::Ident {
            continue;
        }
        let mut j = i + 1;
        while let Some(n) = tokens.get(j) {
            let skip = n.kind == TokenKind::Punct('&')
                || n.kind == TokenKind::Lifetime
                || (n.kind == TokenKind::Ident && n.text == "mut");
            if !skip {
                break;
            }
            j += 1;
        }
        if let Some(head) = tokens.get(j) {
            if head.kind == TokenKind::Ident && (head.text == "HashMap" || head.text == "HashSet") {
                out.insert(prev.text.clone());
            }
        }
    }
    // `let name = HashMap::new()` — scan 4-token windows `name = HashMap :`.
    for w in tokens.windows(4) {
        let [a, b, c, d] = w else { continue };
        if a.kind == TokenKind::Ident
            && b.kind == TokenKind::Punct('=')
            && c.kind == TokenKind::Ident
            && (c.text == "HashMap" || c.text == "HashSet")
            && d.kind == TokenKind::Punct(':')
        {
            out.insert(a.text.clone());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn function_spans_and_innermost_lookup() {
        let src = "fn outer() {\n  fn inner() {\n    body();\n  }\n}\n";
        let f = SourceFile::parse("x.rs", src);
        assert_eq!(f.functions.len(), 2);
        assert_eq!(f.enclosing_fn(3).unwrap().name, "inner");
        assert_eq!(f.enclosing_fn(5).unwrap().name, "outer");
    }

    #[test]
    fn cfg_test_mod_and_test_fn_are_test_regions() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n  fn helper() {}\n}\n#[test]\nfn unit() {\n  check();\n}\n";
        let f = SourceFile::parse("x.rs", src);
        assert!(!f.in_test_region(1));
        assert!(f.in_test_region(4));
        assert!(f.in_test_region(8));
    }

    #[test]
    fn suppression_requires_justification() {
        let good = "mm-lint: allow";
        let src = format!(
            "// {good}(serve-panic-freedom): worker spawn precedes any flight\nx.unwrap();\n// {good}(serve-panic-freedom)\ny.unwrap();\n"
        );
        let f = SourceFile::parse("x.rs", &src);
        assert_eq!(f.suppressions.len(), 2);
        assert!(f.suppression_for("serve-panic-freedom", 2).is_some());
        assert!(f.suppression_for("serve-panic-freedom", 4).is_none());
        assert!(f.suppressions[1].malformed);
    }

    #[test]
    fn map_typed_idents_are_collected() {
        let src = "struct S { pending: HashMap<u64, T> }\nfn f(live: &HashSet<u32>) { let fresh = HashMap::new(); }\nlet plain: Vec<u8>;\n";
        let f = SourceFile::parse("x.rs", src);
        assert!(f.map_idents.contains("pending"));
        assert!(f.map_idents.contains("live"));
        assert!(f.map_idents.contains("fresh"));
        assert!(!f.map_idents.contains("plain"));
    }
}
