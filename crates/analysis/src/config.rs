//! Rule catalogue, scan tiers, and the per-rule allowlists.
//!
//! Allowlist entries are the *architectural* exceptions — places where a
//! pattern is the contract's own implementation (the blessed kernels, the
//! accounted answer path, the sampling primitives).  One-off exceptions
//! belong inline at the site, as `mm-lint:`-prefixed `allow(<rule>)`
//! comments with a justification, so the reason lives next to the code.

/// Identity and description of one lint rule.
#[derive(Debug, Clone, Copy)]
pub struct RuleInfo {
    pub id: &'static str,
    pub description: &'static str,
}

/// The launch rule set.  `lint-suppression` is the meta-rule: malformed or
/// unknown-rule suppressions are themselves findings, so a bare `allow`
/// can never silently disable checking.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        id: "charge-before-noise",
        description: "noise may only be drawn on an accounted path: any function reaching a \
                      NoiseBackend sampling call (.sample / gaussian_noise / laplace_noise) \
                      must be in the accounted-path allowlist or carry a justified allow",
    },
    RuleInfo {
        id: "determinism-hygiene",
        description: "no HashMap/HashSet iteration, Instant/SystemTime-derived values, or \
                      unordered read_dir results in numeric kernels, cache keys, or the \
                      .mmplan store (mm-linalg, mm-core::engine, mm-workload)",
    },
    RuleInfo {
        id: "blessed-reduction",
        description: "f64 reductions in mm-linalg/mm-opt must go through the fixed-block \
                      ops primitives, not ad-hoc .sum()/fold accumulation \
                      (order-independent max/min folds are exempt)",
    },
    RuleInfo {
        id: "serve-panic-freedom",
        description: "no unwrap/expect/panic!/unguarded indexing in the serve tier and the \
                      single-flight machinery, where a panic poisons every waiter",
    },
    RuleInfo {
        id: "assert-on-input",
        description: "assert! on user-controllable input in mm-core/mm-serve must be \
                      promoted to a typed MechanismError (debug_assert! internal \
                      invariants are exempt)",
    },
    RuleInfo {
        id: "unsafe-forbidden",
        description: "no unsafe code anywhere; every crate root must declare \
                      #![forbid(unsafe_code)]",
    },
    RuleInfo {
        id: "lint-suppression",
        description: "every suppression must name a known rule and carry a justification \
                      of at least 10 characters",
    },
];

/// True when `id` names a real (non-meta) rule.
pub fn known_rule(id: &str) -> bool {
    RULES.iter().any(|r| r.id == id)
}

/// How strictly a file's findings are treated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tier {
    /// Findings are errors and gate the build.
    Strict,
    /// Findings are reported as warnings only (examples, tests, benches).
    Warn,
    /// Not scanned (lint fixtures, which contain violations by design).
    Skip,
}

/// Classifies a workspace-relative path.
pub fn tier_for(path: &str) -> Tier {
    let p = path.replace('\\', "/");
    if p.contains("crates/analysis/tests/fixtures/") {
        return Tier::Skip;
    }
    let warn_dirs = ["examples/", "tests/", "benches/"];
    if warn_dirs
        .iter()
        .any(|d| p.starts_with(d) || p.contains(&format!("/{d}")))
    {
        return Tier::Warn;
    }
    Tier::Strict
}

/// One allowlisted exception: `rule` is exempt in the file whose path ends
/// with `path_suffix`, optionally narrowed to a single named function.
#[derive(Debug, Clone, Copy)]
pub struct AllowEntry {
    pub rule: &'static str,
    pub path_suffix: &'static str,
    pub function: Option<&'static str>,
    pub reason: &'static str,
}

/// The architectural allowlist.  Every entry must say *why* the exception is
/// sound; the JSON report carries the reason alongside each match.
pub const ALLOWLIST: &[AllowEntry] = &[
    AllowEntry {
        rule: "charge-before-noise",
        path_suffix: "crates/core/src/engine/mod.rs",
        function: Some("answer_parts"),
        reason: "the engine's single accounted answer path: the ledger admits the \
                 MechanismEvent (check_event_many) before sample() is reached and charges \
                 it (charge_event_many) before answers are released",
    },
    AllowEntry {
        rule: "charge-before-noise",
        path_suffix: "crates/core/src/engine/structured.rs",
        function: Some("answer_structured_maybe_accounted"),
        reason: "the structured (matrix-free) accounted answer path: the ledger admits \
                 the MechanismEvent (check_event_many) before sample() is reached and \
                 charges it (charge_event_many) before answers are released",
    },
    AllowEntry {
        rule: "charge-before-noise",
        path_suffix: "crates/core/src/mechanism/backend.rs",
        function: Some("sample"),
        reason: "NoiseBackend::sample implementations are the sampling primitive itself; \
                 the rule audits their callers",
    },
    AllowEntry {
        rule: "charge-before-noise",
        path_suffix: "crates/core/src/mechanism/noise.rs",
        function: None,
        reason: "definition site of the gaussian_noise/laplace_noise primitives; they \
                 have no accountant to reach",
    },
    AllowEntry {
        rule: "blessed-reduction",
        path_suffix: "crates/linalg/src/ops.rs",
        function: None,
        reason: "the blessed fixed-block reduction kernels themselves — the primitives \
                 the rule routes everyone else through",
    },
    AllowEntry {
        rule: "determinism-hygiene",
        path_suffix: "crates/core/src/engine/store/mod.rs",
        function: Some("len"),
        reason: "read_dir used only to count persisted entries; a count is \
                 order-independent",
    },
];

/// Allowlist entries matching a (rule, file, enclosing-function) triple.
pub fn allow_for(rule: &str, path: &str, function: Option<&str>) -> Option<&'static AllowEntry> {
    ALLOWLIST.iter().find(|e| {
        e.rule == rule
            && path.ends_with(e.path_suffix)
            && match e.function {
                None => true,
                Some(f) => function == Some(f),
            }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiers_classify_paths() {
        assert_eq!(tier_for("crates/serve/src/lib.rs"), Tier::Strict);
        assert_eq!(tier_for("src/lib.rs"), Tier::Strict);
        assert_eq!(tier_for("examples/quickstart.rs"), Tier::Warn);
        assert_eq!(tier_for("tests/serving.rs"), Tier::Warn);
        assert_eq!(tier_for("crates/core/tests/x.rs"), Tier::Warn);
        assert_eq!(
            tier_for("crates/analysis/tests/fixtures/bad_unwrap.rs"),
            Tier::Skip
        );
    }

    #[test]
    fn allowlist_narrows_by_function() {
        assert!(allow_for(
            "charge-before-noise",
            "crates/core/src/engine/mod.rs",
            Some("answer_parts")
        )
        .is_some());
        assert!(allow_for(
            "charge-before-noise",
            "crates/core/src/engine/mod.rs",
            Some("select_entry")
        )
        .is_none());
        assert!(allow_for(
            "blessed-reduction",
            "crates/linalg/src/ops.rs",
            Some("anything")
        )
        .is_some());
    }

    #[test]
    fn every_allowlist_entry_names_a_known_rule_with_a_reason() {
        for e in ALLOWLIST {
            assert!(known_rule(e.rule), "unknown rule {}", e.rule);
            assert!(e.reason.len() >= 10, "thin reason for {}", e.rule);
        }
    }
}
