#![forbid(unsafe_code)]
//! CLI for the workspace invariant linter.
//!
//! ```text
//!     cargo run -p mm-analysis -- check [--root <dir>] [--json <path>]
//! ```
//!
//! `check` scans the workspace, prints diagnostics, writes `ANALYSIS.json`
//! (schema `mm-analysis/v1`), and exits non-zero when any unsuppressed
//! strict-tier finding remains — the CI gate.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut command = None;
    let mut root = PathBuf::from(".");
    let mut json_path: Option<PathBuf> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "check" => command = Some("check"),
            "--root" => {
                i += 1;
                match args.get(i) {
                    Some(v) => root = PathBuf::from(v),
                    None => return usage("--root needs a value"),
                }
            }
            "--json" => {
                i += 1;
                match args.get(i) {
                    Some(v) => json_path = Some(PathBuf::from(v)),
                    None => return usage("--json needs a value"),
                }
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
        i += 1;
    }
    if command != Some("check") {
        return usage("expected the `check` command");
    }

    let report = match mm_analysis::check_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("mm-analysis: scan failed: {e}");
            return ExitCode::from(2);
        }
    };

    print!("{}", report.render_text());

    let json_path = json_path.unwrap_or_else(|| root.join("ANALYSIS.json"));
    if let Err(e) = std::fs::write(&json_path, report.to_json()) {
        eprintln!("mm-analysis: cannot write {}: {e}", json_path.display());
        return ExitCode::from(2);
    }
    println!("mm-analysis: wrote {}", json_path.display());

    // Under GitHub Actions, append the counts (and any active warn-tier
    // findings, which never gate) to the job summary.  Best-effort: a
    // summary failure must not mask the scan verdict.
    if let Ok(summary_path) = std::env::var("GITHUB_STEP_SUMMARY") {
        use std::io::Write as _;
        let appended = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&summary_path)
            .and_then(|mut f| f.write_all(report.render_step_summary().as_bytes()));
        if let Err(e) = appended {
            eprintln!("mm-analysis: cannot append job summary to {summary_path}: {e}");
        }
    }

    if report.exit_code() == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn usage(problem: &str) -> ExitCode {
    eprintln!("mm-analysis: {problem}");
    eprintln!("usage: mm-analysis check [--root <dir>] [--json <path>]");
    ExitCode::from(2)
}
