pub fn set_epsilon(epsilon: f64) -> f64 {
    assert!(epsilon > 0.0, "epsilon must be positive");
    epsilon
}
