pub fn f(backend: &B, rng: &mut R) {
    // mm-lint: allow(charge-before-noise): one-shot API whose cost is fixed at construction
    let _x = backend.sample(rng, 1.0, 1);
}
