pub fn broken(queue: &Mutex<Vec<Job>>, jobs: &[Job]) -> Job {
    let _guard = queue.lock().unwrap();
    if jobs.is_empty() {
        panic!("no jobs");
    }
    jobs[0].clone()
}
