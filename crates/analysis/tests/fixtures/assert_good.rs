pub fn set_epsilon(epsilon: f64) -> Result<f64, MechanismError> {
    if epsilon <= 0.0 {
        return Err(MechanismError::InvalidArgument("epsilon".into()));
    }
    debug_assert!(epsilon.is_finite());
    Ok(epsilon)
}
