pub fn sneak_release(backend: &dyn NoiseBackend, rng: &mut R, scale: f64, n: usize) -> Vec<f64> {
    let noise = backend.sample(rng, scale, n);
    noise
}

pub fn helper(rng: &mut R, sigma: f64, n: usize) -> Vec<f64> {
    gaussian_noise(rng, sigma, n)
}
