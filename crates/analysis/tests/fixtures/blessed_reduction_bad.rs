pub fn total(xs: &[f64]) -> f64 {
    xs.iter().sum()
}

pub fn running(xs: &[f64]) -> f64 {
    xs.iter().fold(0.0, |acc, x| acc + x)
}
