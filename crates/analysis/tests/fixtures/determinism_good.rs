use std::collections::BTreeMap;

pub fn accumulate(weights: &BTreeMap<u64, f64>) -> f64 {
    let mut total = 0.0;
    for (_k, v) in weights.iter() {
        total += v;
    }
    total
}
