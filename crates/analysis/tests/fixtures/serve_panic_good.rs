pub fn steady(queue: &Mutex<Vec<Job>>, jobs: &[Job]) -> Option<Job> {
    let _guard = queue.lock().unwrap_or_else(PoisonError::into_inner);
    jobs.first().cloned()
}
