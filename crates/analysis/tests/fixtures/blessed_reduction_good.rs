pub fn total(xs: &[f64]) -> f64 {
    crate::ops::sum(xs)
}

pub fn peak(xs: &[f64]) -> f64 {
    xs.iter().fold(f64::NEG_INFINITY, |m, &x| m.max(x))
}
