pub fn charged_release(
    ledger: &BudgetLedger,
    backend: &dyn NoiseBackend,
    rng: &mut R,
    scale: f64,
    n: usize,
) -> Result<Vec<f64>, MechanismError> {
    ledger.charge_event_many(&event, n)?;
    // mm-lint: allow(charge-before-noise): the ledger charge on the line above precedes every draw
    let noise = backend.sample(rng, scale, n);
    Ok(noise)
}
