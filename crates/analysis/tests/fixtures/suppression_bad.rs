pub fn f(backend: &B, rng: &mut R) {
    // mm-lint: allow(charge-before-noise)
    let _x = backend.sample(rng, 1.0, 1);
    // mm-lint: allow(not-a-rule): this justification is long enough to parse
    let _y = backend.sample(rng, 1.0, 1);
}
