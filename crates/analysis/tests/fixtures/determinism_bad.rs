use std::collections::HashMap;

pub fn accumulate(weights: &HashMap<u64, f64>) -> f64 {
    let mut total = 0.0;
    for (_k, v) in weights.iter() {
        total += v;
    }
    total
}

pub fn stamp() -> u64 {
    let _t = std::time::Instant::now();
    0
}
