#![forbid(unsafe_code)]
pub fn peek(xs: &[f64]) -> Option<f64> {
    xs.first().copied()
}
