//! Golden-file tests: each rule has a known-bad fixture (exact diagnostics
//! asserted, file:line precision) and a known-good fixture (clean under the
//! same synthetic path).  Fixtures live in `tests/fixtures/` and are fed to
//! the engine under *synthetic* workspace-relative paths, because the real
//! fixture directory is Tier::Skip — the linter must never gate on its own
//! violation corpus.

use mm_analysis::report::{Report, Status};
use mm_analysis::{analyze_source, check_workspace};
use std::path::Path;

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read fixture {name}: {e}"))
}

/// Lints a fixture as if it lived at `rel_path` in the workspace.
fn lint_as(rel_path: &str, fixture_name: &str) -> Report {
    let mut report = Report::default();
    analyze_source(rel_path, &fixture(fixture_name), &mut report);
    report.sort();
    report
}

/// The gating findings as `(rule, line)` pairs, in report order.
fn gating(report: &Report) -> Vec<(String, usize)> {
    report.gating().map(|f| (f.rule.clone(), f.line)).collect()
}

#[test]
fn charge_before_noise_bad_fixture_flags_both_draw_sites() {
    let report = lint_as(
        "crates/core/src/mechanism/sneak.rs",
        "charge_before_noise_bad.rs",
    );
    assert_eq!(
        gating(&report),
        vec![
            ("charge-before-noise".to_string(), 2),
            ("charge-before-noise".to_string(), 7),
        ]
    );
    let messages: Vec<&str> = report.gating().map(|f| f.message.as_str()).collect();
    assert!(messages[0].contains("`sample` draws noise outside the accounted path"));
    assert!(messages[1].contains("`gaussian_noise` draws noise outside the accounted path"));
    assert_eq!(report.exit_code(), 1);
}

#[test]
fn charge_before_noise_good_fixture_is_suppressed_with_justification() {
    let report = lint_as(
        "crates/core/src/mechanism/sneak.rs",
        "charge_before_noise_good.rs",
    );
    assert_eq!(report.exit_code(), 0);
    assert_eq!(report.findings.len(), 1);
    match &report.findings[0].status {
        Status::Suppressed { justification } => {
            assert!(justification.contains("ledger charge"));
        }
        other => panic!("expected Suppressed, got {other:?}"),
    }
}

#[test]
fn determinism_bad_fixture_flags_hash_iteration_and_wall_clock() {
    let report = lint_as("crates/core/src/engine/sneak.rs", "determinism_bad.rs");
    assert_eq!(
        gating(&report),
        vec![
            ("determinism-hygiene".to_string(), 5),
            ("determinism-hygiene".to_string(), 12),
        ]
    );
    let messages: Vec<&str> = report.gating().map(|f| f.message.as_str()).collect();
    assert!(messages[0].contains("hash-ordered `weights`"));
    assert!(messages[1].contains("Instant"));
}

#[test]
fn determinism_good_fixture_btreemap_iteration_is_clean() {
    let report = lint_as("crates/core/src/engine/sneak.rs", "determinism_good.rs");
    assert!(report.findings.is_empty(), "{:?}", report.findings);
}

#[test]
fn blessed_reduction_bad_fixture_flags_sum_and_float_fold() {
    let report = lint_as("crates/opt/src/sneak.rs", "blessed_reduction_bad.rs");
    assert_eq!(
        gating(&report),
        vec![
            ("blessed-reduction".to_string(), 2),
            ("blessed-reduction".to_string(), 6),
        ]
    );
    let messages: Vec<&str> = report.gating().map(|f| f.message.as_str()).collect();
    assert!(messages[0].contains("ad-hoc `.sum()` accumulation"));
    assert!(messages[1].contains("ad-hoc f64 `.fold()` accumulation"));
}

#[test]
fn blessed_reduction_good_fixture_ops_call_and_max_fold_are_clean() {
    let report = lint_as("crates/opt/src/sneak.rs", "blessed_reduction_good.rs");
    assert!(report.findings.is_empty(), "{:?}", report.findings);
}

#[test]
fn serve_panic_bad_fixture_flags_unwrap_panic_and_indexing() {
    let report = lint_as("crates/serve/src/sneak.rs", "serve_panic_bad.rs");
    assert_eq!(
        gating(&report),
        vec![
            ("serve-panic-freedom".to_string(), 2),
            ("serve-panic-freedom".to_string(), 4),
            ("serve-panic-freedom".to_string(), 6),
        ]
    );
    let messages: Vec<&str> = report.gating().map(|f| f.message.as_str()).collect();
    assert!(messages[0].contains("`.unwrap()` can panic and poison every flight waiter"));
    assert!(messages[1].contains("`panic!` in the serve tier"));
    assert!(messages[2].contains("unguarded indexing `jobs[…]`"));
}

#[test]
fn serve_panic_good_fixture_poison_recovery_is_clean() {
    let report = lint_as("crates/serve/src/sneak.rs", "serve_panic_good.rs");
    assert!(report.findings.is_empty(), "{:?}", report.findings);
}

#[test]
fn assert_bad_fixture_flags_assert_on_input() {
    let report = lint_as("crates/core/src/sneak.rs", "assert_bad.rs");
    assert_eq!(gating(&report), vec![("assert-on-input".to_string(), 2)]);
    let f = report.gating().next().expect("one finding");
    assert!(f
        .message
        .contains("`assert!` in non-test mm-core/mm-serve code"));
    assert_eq!(f.function.as_deref(), Some("set_epsilon"));
}

#[test]
fn assert_good_fixture_typed_error_and_debug_assert_are_clean() {
    let report = lint_as("crates/core/src/sneak.rs", "assert_good.rs");
    assert!(report.findings.is_empty(), "{:?}", report.findings);
}

#[test]
fn unsafe_bad_fixture_flags_the_block_and_crate_roots_need_forbid() {
    let report = lint_as("crates/strategies/src/sneak.rs", "unsafe_bad.rs");
    assert_eq!(gating(&report), vec![("unsafe-forbidden".to_string(), 2)]);

    // The same content at a crate root additionally reports the missing
    // `#![forbid(unsafe_code)]` attribute at 1:1.
    let report = lint_as("crates/strategies/src/lib.rs", "unsafe_bad.rs");
    assert_eq!(
        gating(&report),
        vec![
            ("unsafe-forbidden".to_string(), 1),
            ("unsafe-forbidden".to_string(), 2),
        ]
    );
    let messages: Vec<&str> = report.gating().map(|f| f.message.as_str()).collect();
    assert!(messages[0].contains("crate root is missing `#![forbid(unsafe_code)]`"));
}

#[test]
fn unsafe_good_fixture_forbidding_crate_root_is_clean() {
    let report = lint_as("crates/strategies/src/lib.rs", "unsafe_good.rs");
    assert!(report.findings.is_empty(), "{:?}", report.findings);
}

#[test]
fn suppression_bad_fixture_malformed_allows_are_findings_and_do_not_silence() {
    let report = lint_as("crates/core/src/mechanism/sneak.rs", "suppression_bad.rs");
    assert_eq!(
        gating(&report),
        vec![
            ("lint-suppression".to_string(), 2),
            ("charge-before-noise".to_string(), 3),
            ("lint-suppression".to_string(), 4),
            ("charge-before-noise".to_string(), 5),
        ]
    );
    let messages: Vec<&str> = report.gating().map(|f| f.message.as_str()).collect();
    assert!(messages[0].contains("suppression for `charge-before-noise` lacks a justification"));
    assert!(messages[2].contains("suppression names unknown rule `not-a-rule`"));
    assert_eq!(report.exit_code(), 1);
}

#[test]
fn suppression_good_fixture_justified_allow_silences_exactly_one_line() {
    let report = lint_as("crates/core/src/mechanism/sneak.rs", "suppression_good.rs");
    assert_eq!(report.exit_code(), 0);
    assert_eq!(report.findings.len(), 1);
    assert!(matches!(
        report.findings[0].status,
        Status::Suppressed { .. }
    ));
}

#[test]
fn allowlist_covers_the_noise_primitive_file() {
    // The identical bad content is architecturally allowlisted when it lives
    // at the blessed sampling-primitive path.
    let report = lint_as(
        "crates/core/src/mechanism/noise.rs",
        "charge_before_noise_bad.rs",
    );
    assert_eq!(report.exit_code(), 0);
    assert_eq!(report.findings.len(), 2);
    for f in &report.findings {
        match &f.status {
            Status::Allowlisted { reason } => assert!(reason.contains("primitives")),
            other => panic!("expected Allowlisted, got {other:?}"),
        }
    }
}

#[test]
fn examples_tier_reports_warnings_without_gating() {
    let report = lint_as("examples/demo.rs", "charge_before_noise_bad.rs");
    assert_eq!(report.exit_code(), 0, "warn tier never gates");
    assert_eq!(report.gating().count(), 0);
    assert_eq!(report.warnings().count(), 2);
}

#[test]
fn fixture_directory_itself_is_skipped() {
    let report = lint_as(
        "crates/analysis/tests/fixtures/charge_before_noise_bad.rs",
        "charge_before_noise_bad.rs",
    );
    assert_eq!(report.files_scanned, 0);
    assert!(report.findings.is_empty());
}

#[test]
fn injected_violation_fails_check_workspace_with_precise_position() {
    let root = Path::new(env!("CARGO_TARGET_TMPDIR")).join("mm-analysis-injected");
    let src_dir = root.join("crates/core/src/engine");
    std::fs::create_dir_all(&src_dir).expect("create temp workspace");
    std::fs::write(
        src_dir.join("injected.rs"),
        "pub fn stamp() -> u64 {\n    let _t = std::time::Instant::now();\n    0\n}\n",
    )
    .expect("write injected violation");

    let report = check_workspace(&root).expect("scan temp workspace");
    assert_eq!(report.exit_code(), 1, "injected violation must gate");
    let f = report.gating().next().expect("one gating finding");
    assert_eq!(f.rule, "determinism-hygiene");
    assert_eq!(f.path, "crates/core/src/engine/injected.rs");
    assert_eq!(f.line, 2);
    let text = report.render_text();
    assert!(text.contains("crates/core/src/engine/injected.rs:2:"));

    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn shipped_tree_passes_the_gate() {
    // CARGO_MANIFEST_DIR is crates/analysis; the workspace root is two up.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("workspace root");
    let report = check_workspace(root).expect("scan workspace");
    assert_eq!(
        report.exit_code(),
        0,
        "shipped tree must be clean:\n{}",
        report.render_text()
    );
}
