//! # mm-serve
//!
//! The async serving tier over [`mm_core`]'s engine: hand-rolled,
//! executor-agnostic futures, bounded admission, and shared per-principal
//! budgets — the long-lived, warm, budget-governed query-answering layer the
//! matrix mechanism's data-independent selection makes possible.
//!
//! Three properties distinguish it from calling the engine directly:
//!
//! * **Non-blocking waits.** `Engine::answer` on a cold workload blocks an
//!   OS thread in the cache's single-flight wait.  [`ServeEngine::answer`]
//!   instead returns a [`Future`](std::future::Future): a cache miss
//!   enqueues one selection job on the worker pool, concurrent requests for
//!   the same fingerprint *register wakers* on the in-flight job (no
//!   duplicate selection, no blocked executor threads), and every waiter
//!   resumes when the job completes.  The futures are plain `std` futures —
//!   drive them with any runtime, or with the bundled [`block_on`] /
//!   [`join_all`].
//! * **Bounded admission.** The selection queue is bounded; when it is full,
//!   new cold-workload requests fail fast with [`ServeError::Overloaded`]
//!   instead of queueing without limit.  Requests charged to a
//!   [`UserLedger`] are additionally probed against the principal's shared
//!   budget headroom at submit time, so a spent budget rejects before any
//!   work is queued.
//! * **Typed failure.** A selection job that returns an error or panics
//!   poisons only that flight: every waiter receives a typed
//!   [`MechanismError::PoisonedSelection`] / the selector's error, and the
//!   fingerprint can be retried fresh.
//! * **Graceful degradation.** Requests can carry **deadlines** (a builder
//!   default, or per-future): an expired request resolves with the typed
//!   [`ServeError::DeadlineExceeded`] — a watchdog thread wakes it even if
//!   the selection it waits on never finishes — and a queued selection job
//!   whose founder expired is skipped, never run stale.  Failures classify
//!   as transient or permanent ([`ServeError::is_transient`]), the engine
//!   below retries transient store faults with bounded backoff behind a
//!   circuit breaker, and [`ServeEngine::health`] exposes one degradation
//!   snapshot (queue depth, shed/expiry counters, poisoned flights, store
//!   breaker state) for operators and the chaos suite.
//!
//! Answers are produced by the engine's own paths, so everything the engine
//! guarantees (bit-identical batching, persistent-store round-trips, budget
//! fail-closed semantics) holds verbatim when served through this crate.
//!
//! # Example
//!
//! ```
//! use mm_core::engine::{Engine, PrivacyBudget};
//! use mm_core::accounting::UserLedger;
//! use mm_serve::{block_on, join_all, ServeEngine};
//! use mm_workload::range::AllRangeWorkload;
//! use mm_workload::Domain;
//! use std::sync::Arc;
//!
//! let engine = Arc::new(Engine::builder().build().unwrap());
//! let serve = ServeEngine::builder(engine).workers(2).build();
//! let workload = Arc::new(AllRangeWorkload::new(Domain::one_dim(16)));
//! let x: Vec<f64> = (0..16).map(|i| 10.0 + i as f64).collect();
//!
//! // Two concurrent requests for one cold workload: one selection job runs,
//! // both futures resolve.
//! let a = serve.answer(workload.clone(), x.clone(), 1);
//! let b = serve.answer(workload.clone(), x.clone(), 2);
//! let answers = block_on(join_all(vec![a, b]));
//! assert!(answers.iter().all(|a| a.is_ok()));
//!
//! // Budget-governed serving: sessions share the principal's one ledger.
//! let ledger = UserLedger::new("alice", PrivacyBudget::new(1.0, 1e-3));
//! let answer = block_on(serve.answer_for(&ledger, workload, x, 3)).unwrap();
//! assert_eq!(answer.answers.len(), 16 * 17 / 2);
//! assert!(ledger.spent().epsilon > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod executor;
mod future;

pub use executor::{block_on, join_all, JoinAll};
pub use future::{AnswerFuture, BatchFuture, StructuredFuture};

use mm_core::accounting::UserLedger;
use mm_core::engine::{Engine, StoreHealth};
use mm_core::{Fault, FaultSite, MechanismError};
use mm_workload::{try_gram_fingerprint, StructuredWorkload, Workload};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::task::Waker;
use std::time::{Duration, Instant};

use future::{SelectionTask, TaskFailure};

/// Default number of selection worker threads.
pub const DEFAULT_WORKERS: usize = 2;

/// Default bound on queued selection jobs before load is shed.
pub const DEFAULT_QUEUE_CAPACITY: usize = 64;

/// Why the serving tier failed a request.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub enum ServeError {
    /// The selection queue was full: the request was shed at admission
    /// without doing any work.  Retry later, or grow the queue/worker pool.
    Overloaded {
        /// The configured queue bound that was hit.
        capacity: usize,
    },
    /// The request's deadline passed before it resolved (builder default or
    /// per-future override).  No answer was produced and nothing was charged
    /// to a ledger; a selection the request founded may still complete and
    /// warm the cache for later requests.
    DeadlineExceeded {
        /// The configured deadline, in milliseconds.
        deadline_ms: u64,
    },
    /// The underlying mechanism failed (selector error, poisoned selection,
    /// exhausted budget, invalid argument, …).  Shared, because one failed
    /// selection can fail many waiting requests.
    Mechanism(Arc<MechanismError>),
}

impl ServeError {
    /// The mechanism error inside, if this is [`ServeError::Mechanism`].
    pub fn mechanism(&self) -> Option<&MechanismError> {
        match self {
            ServeError::Mechanism(e) => Some(e),
            _ => None,
        }
    }

    /// Whether retrying the same request could plausibly succeed without
    /// any caller-side change.
    ///
    /// [`ServeError::Overloaded`] and [`ServeError::DeadlineExceeded`] are
    /// load conditions — transient by nature (and the shed/expired request
    /// may even find the cache warmed by the flight it abandoned).
    /// [`ServeError::Mechanism`] delegates to
    /// [`MechanismError::is_transient`]: store I/O failures and poisoned
    /// selections are retryable, everything else is a deterministic
    /// function of the request.
    pub fn is_transient(&self) -> bool {
        match self {
            ServeError::Overloaded { .. } | ServeError::DeadlineExceeded { .. } => true,
            ServeError::Mechanism(e) => e.is_transient(),
        }
    }
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Overloaded { capacity } => write!(
                f,
                "serving tier overloaded: selection queue at capacity {capacity}"
            ),
            ServeError::DeadlineExceeded { deadline_ms } => {
                write!(f, "request deadline of {deadline_ms} ms exceeded")
            }
            ServeError::Mechanism(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Mechanism(e) => Some(&**e as &(dyn std::error::Error + 'static)),
            ServeError::Overloaded { .. } | ServeError::DeadlineExceeded { .. } => None,
        }
    }
}

impl From<MechanismError> for ServeError {
    fn from(e: MechanismError) -> Self {
        ServeError::Mechanism(Arc::new(e))
    }
}

/// Request counters of a [`ServeEngine`] (monotone since construction).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServeStats {
    /// Futures created by `answer`/`answer_batch` (and the `_for` variants).
    pub submitted: u64,
    /// Requests that resolved with answers.
    pub completed: u64,
    /// Requests that resolved with a mechanism error.
    pub failed: u64,
    /// Requests shed with [`ServeError::Overloaded`] (queue full).
    pub shed: u64,
    /// Requests rejected at submit time (budget headroom, NaN gram).
    pub rejected: u64,
    /// Selection jobs enqueued on the worker pool — with waker-based
    /// deduplication this stays at one per distinct cold fingerprint no
    /// matter how many requests pile onto it.
    pub selection_jobs: u64,
    /// Requests submitted through the structured (matrix-free) path
    /// ([`ServeEngine::answer_structured`]); these never enqueue worker
    /// jobs, so they are excluded from `selection_jobs`.
    pub structured: u64,
    /// Requests that resolved with [`ServeError::DeadlineExceeded`]
    /// (counted here, not in `failed`).
    pub deadline_expired: u64,
    /// Queued selection jobs skipped by a worker because the founding
    /// request's deadline had already passed when the job was dequeued.
    pub jobs_expired: u64,
}

/// A point-in-time degradation snapshot of a [`ServeEngine`] — see
/// [`ServeEngine::health`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub struct ServeHealth {
    /// Selection jobs currently queued (admitted, not yet dequeued).
    pub queue_depth: usize,
    /// The configured queue bound ([`ServeEngineBuilder::queue_capacity`]).
    pub queue_capacity: usize,
    /// Selection flights currently in progress (founded, not yet resolved).
    pub pending_selections: usize,
    /// Requests shed with [`ServeError::Overloaded`] since construction.
    pub shed: u64,
    /// Requests rejected at submit (budget headroom, NaN gram) since
    /// construction.
    pub rejected: u64,
    /// Requests that resolved [`ServeError::DeadlineExceeded`].
    pub deadline_expired: u64,
    /// Queued selection jobs skipped because their founder's deadline
    /// passed before they ran.
    pub jobs_expired: u64,
    /// Selection flights that were poisoned (selector error, panic or
    /// abandonment) and retried by a later leader, from the engine.
    pub poisoned_flights: u64,
    /// The persistent store's health: circuit-breaker state, consecutive
    /// save failures, corruption drops, total save failures.  All-default
    /// (closed breaker, zero counters) when no store is configured.
    pub store: StoreHealth,
}

pub(crate) type Job = Box<dyn FnOnce() + Send + 'static>;

pub(crate) struct Inner {
    pub(crate) engine: Arc<Engine>,
    queue: Mutex<VecDeque<Job>>,
    queue_cv: Condvar,
    queue_capacity: usize,
    shutdown: AtomicBool,
    pub(crate) pending: Mutex<HashMap<u64, Arc<SelectionTask>>>,
    /// Deadline → waker registrations serviced by the watchdog thread, so a
    /// pending future whose deadline passes is woken (and resolves
    /// [`ServeError::DeadlineExceeded`]) even if the selection it waits on
    /// never completes.
    timers: Mutex<Vec<(Instant, Waker)>>,
    timer_cv: Condvar,
    /// Deadline applied to every future at submit unless overridden
    /// per-future; `None` means requests wait indefinitely.
    pub(crate) default_deadline: Option<Duration>,
    pub(crate) submitted: AtomicU64,
    pub(crate) completed: AtomicU64,
    pub(crate) failed: AtomicU64,
    pub(crate) shed: AtomicU64,
    pub(crate) rejected: AtomicU64,
    pub(crate) selection_jobs: AtomicU64,
    pub(crate) structured: AtomicU64,
    pub(crate) deadline_expired: AtomicU64,
    pub(crate) jobs_expired: AtomicU64,
}

impl std::fmt::Debug for Inner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Inner")
            .field("queue_capacity", &self.queue_capacity)
            .finish_non_exhaustive()
    }
}

impl Inner {
    /// Enqueues a selection job unless the queue is full.
    ///
    /// Lock poisoning is recovered throughout this tier: the queue and
    /// pending maps hold plain data that is never left half-updated across a
    /// panic (jobs are pushed/popped whole), so the poison flag carries no
    /// information — and propagating it would panic every waiter.
    pub(crate) fn try_enqueue(&self, job: Job) -> bool {
        let mut queue = self.queue.lock().unwrap_or_else(PoisonError::into_inner);
        if queue.len() >= self.queue_capacity {
            return false;
        }
        queue.push_back(job);
        self.queue_cv.notify_one();
        true
    }

    pub(crate) fn queue_capacity(&self) -> usize {
        self.queue_capacity
    }

    fn worker_loop(&self) {
        loop {
            let job = {
                let mut queue = self.queue.lock().unwrap_or_else(PoisonError::into_inner);
                loop {
                    if let Some(job) = queue.pop_front() {
                        break Some(job);
                    }
                    if self.shutdown.load(Ordering::Acquire) {
                        break None;
                    }
                    queue = self
                        .queue_cv
                        .wait(queue)
                        .unwrap_or_else(PoisonError::into_inner);
                }
            };
            match job {
                Some(job) => {
                    // The worker fault site honours latency only: a stalled
                    // worker (CPU contention, scheduling delay) is what
                    // deadline tests need to reproduce deterministically.
                    if let Some(Fault::LatencyMs(ms)) =
                        self.engine.fault_injector().inject(FaultSite::Worker)
                    {
                        std::thread::sleep(Duration::from_millis(ms));
                    }
                    job()
                }
                None => return, // shutdown with a drained queue
            }
        }
    }

    /// Registers a waker to be woken at `at` by the watchdog thread
    /// (deduplicated per `(instant, task)` so repolls don't accumulate).
    pub(crate) fn register_timer(&self, at: Instant, waker: Waker) {
        {
            let mut timers = self.timers.lock().unwrap_or_else(PoisonError::into_inner);
            if timers.iter().any(|(t, w)| *t == at && w.will_wake(&waker)) {
                return;
            }
            timers.push((at, waker));
        }
        self.timer_cv.notify_all();
    }

    /// The watchdog loop: wakes every registered waker whose deadline has
    /// passed, sleeping until the earliest outstanding deadline otherwise.
    /// Woken futures observe their expiry on the next poll; the watchdog
    /// itself never resolves anything, so a racing completion always wins.
    fn timer_loop(&self) {
        loop {
            let due: Vec<Waker> = {
                let mut timers = self.timers.lock().unwrap_or_else(PoisonError::into_inner);
                loop {
                    if self.shutdown.load(Ordering::Acquire) {
                        // Shutdown: wake everything so no future stays
                        // parked on a watchdog that no longer runs.
                        break timers.drain(..).map(|(_, w)| w).collect();
                    }
                    let now = Instant::now();
                    let mut expired = Vec::new();
                    let mut live = Vec::new();
                    for (at, waker) in timers.drain(..) {
                        if at <= now {
                            expired.push(waker);
                        } else {
                            live.push((at, waker));
                        }
                    }
                    *timers = live;
                    if !expired.is_empty() {
                        break expired;
                    }
                    match timers.iter().map(|(at, _)| *at).min() {
                        Some(next) => {
                            let wait = next.saturating_duration_since(now);
                            let (guard, _) = self
                                .timer_cv
                                .wait_timeout(timers, wait)
                                .unwrap_or_else(PoisonError::into_inner);
                            timers = guard;
                        }
                        None => {
                            timers = self
                                .timer_cv
                                .wait(timers)
                                .unwrap_or_else(PoisonError::into_inner);
                        }
                    }
                }
            };
            let stop = self.shutdown.load(Ordering::Acquire);
            for waker in due {
                waker.wake();
            }
            if stop {
                return;
            }
        }
    }
}

/// Builder for [`ServeEngine`].
#[derive(Debug)]
pub struct ServeEngineBuilder {
    engine: Arc<Engine>,
    workers: usize,
    queue_capacity: usize,
    default_deadline: Option<Duration>,
}

impl ServeEngineBuilder {
    /// Number of selection worker threads (min 1; default
    /// [`DEFAULT_WORKERS`]).  Workers only run strategy selections — answer
    /// assembly happens on the polling task — so size this to the number of
    /// concurrent *cold* workloads you expect, not to request throughput.
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Bound on queued selection jobs before new cold-workload requests are
    /// shed with [`ServeError::Overloaded`] (min 1; default
    /// [`DEFAULT_QUEUE_CAPACITY`]).
    pub fn queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity.max(1);
        self
    }

    /// Deadline applied to every request at submit time (overridable
    /// per-future with `.deadline(...)` on the returned future).  A request
    /// that has not resolved within the deadline fails with the typed
    /// [`ServeError::DeadlineExceeded`]; a queued selection job whose
    /// founding request expired is skipped rather than run stale.  Default:
    /// no deadline (requests wait indefinitely).
    pub fn default_deadline(mut self, deadline: Duration) -> Self {
        self.default_deadline = Some(deadline);
        self
    }

    /// Builds the serving engine and starts its worker threads (plus the
    /// deadline watchdog thread).
    pub fn build(self) -> ServeEngine {
        let inner = Arc::new(Inner {
            engine: self.engine,
            queue: Mutex::new(VecDeque::new()),
            queue_cv: Condvar::new(),
            queue_capacity: self.queue_capacity,
            shutdown: AtomicBool::new(false),
            pending: Mutex::new(HashMap::new()),
            timers: Mutex::new(Vec::new()),
            timer_cv: Condvar::new(),
            default_deadline: self.default_deadline,
            submitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            selection_jobs: AtomicU64::new(0),
            structured: AtomicU64::new(0),
            deadline_expired: AtomicU64::new(0),
            jobs_expired: AtomicU64::new(0),
        });
        let workers = (0..self.workers)
            .map(|i| {
                let inner = inner.clone();
                std::thread::Builder::new()
                    .name(format!("mm-serve-{i}"))
                    .spawn(move || inner.worker_loop())
                    // mm-lint: allow(serve-panic-freedom): spawn runs at construction, before any flight exists — failing fast at startup cannot poison a waiter
                    .expect("spawn serve worker")
            })
            .collect();
        let watchdog = {
            let inner = inner.clone();
            std::thread::Builder::new()
                .name("mm-serve-timer".into())
                .spawn(move || inner.timer_loop())
                // mm-lint: allow(serve-panic-freedom): spawn runs at construction, before any flight exists — failing fast at startup cannot poison a waiter
                .expect("spawn serve watchdog")
        };
        ServeEngine {
            inner,
            workers,
            watchdog: Some(watchdog),
        }
    }
}

/// The async front-end over an [`Engine`]: see the crate docs.
///
/// Dropping the `ServeEngine` stops the worker pool: queued selection jobs
/// are drained first, so every already-admitted future still resolves.
#[derive(Debug)]
pub struct ServeEngine {
    inner: Arc<Inner>,
    workers: Vec<std::thread::JoinHandle<()>>,
    watchdog: Option<std::thread::JoinHandle<()>>,
}

impl ServeEngine {
    /// Starts building a serving tier over an engine.
    pub fn builder(engine: Arc<Engine>) -> ServeEngineBuilder {
        ServeEngineBuilder {
            engine,
            workers: DEFAULT_WORKERS,
            queue_capacity: DEFAULT_QUEUE_CAPACITY,
            default_deadline: None,
        }
    }

    /// The engine answers are produced by.
    pub fn engine(&self) -> &Arc<Engine> {
        &self.inner.engine
    }

    /// Request counters.
    pub fn stats(&self) -> ServeStats {
        ServeStats {
            submitted: self.inner.submitted.load(Ordering::Relaxed),
            completed: self.inner.completed.load(Ordering::Relaxed),
            failed: self.inner.failed.load(Ordering::Relaxed),
            shed: self.inner.shed.load(Ordering::Relaxed),
            rejected: self.inner.rejected.load(Ordering::Relaxed),
            selection_jobs: self.inner.selection_jobs.load(Ordering::Relaxed),
            structured: self.inner.structured.load(Ordering::Relaxed),
            deadline_expired: self.inner.deadline_expired.load(Ordering::Relaxed),
            jobs_expired: self.inner.jobs_expired.load(Ordering::Relaxed),
        }
    }

    /// One coherent degradation snapshot: current load (queue depth,
    /// in-flight selections), every shedding/expiry counter, the engine's
    /// poisoned-flight count, and the persistent store's health (circuit
    /// breaker state, consecutive failures, corruption drops).  This is what
    /// an operator (or the chaos suite's artifact) reads to tell *how* the
    /// tier is degraded, not just that requests are failing.
    pub fn health(&self) -> ServeHealth {
        let queue_depth = self
            .inner
            .queue
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len();
        let pending_selections = self
            .inner
            .pending
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len();
        ServeHealth {
            queue_depth,
            queue_capacity: self.inner.queue_capacity,
            pending_selections,
            shed: self.inner.shed.load(Ordering::Relaxed),
            rejected: self.inner.rejected.load(Ordering::Relaxed),
            deadline_expired: self.inner.deadline_expired.load(Ordering::Relaxed),
            jobs_expired: self.inner.jobs_expired.load(Ordering::Relaxed),
            poisoned_flights: self.inner.engine.stats().poisoned_flights,
            store: self.inner.engine.store_health(),
        }
    }

    /// Answers one workload on one data vector at the engine's privacy
    /// parameters; resolves to the engine's answer.  `seed` determines the
    /// noise draw: a served answer is bit-identical to a direct
    /// `engine.answer` with a `StdRng` seeded the same way.
    pub fn answer<W>(&self, workload: Arc<W>, x: Vec<f64>, seed: u64) -> AnswerFuture<W>
    where
        W: Workload + Send + Sync + ?Sized + 'static,
    {
        AnswerFuture::new(self.submit(workload, vec![x], seed, None))
    }

    /// [`ServeEngine::answer`] charged to a principal's shared
    /// [`UserLedger`]: the request is probed against the ledger's headroom
    /// at submit time and charged on release, so concurrent sessions of one
    /// principal can never jointly over-spend.
    pub fn answer_for<W>(
        &self,
        ledger: &UserLedger,
        workload: Arc<W>,
        x: Vec<f64>,
        seed: u64,
    ) -> AnswerFuture<W>
    where
        W: Workload + Send + Sync + ?Sized + 'static,
    {
        AnswerFuture::new(self.submit(workload, vec![x], seed, Some(ledger.clone())))
    }

    /// Answers one workload on many data vectors (one noise draw each, one
    /// cache/selection round for all — the engine's vectorised batch path).
    pub fn answer_batch<W>(&self, workload: Arc<W>, xs: Vec<Vec<f64>>, seed: u64) -> BatchFuture<W>
    where
        W: Workload + Send + Sync + ?Sized + 'static,
    {
        self.submit(workload, xs, seed, None)
    }

    /// [`ServeEngine::answer_batch`] charged to a principal's shared
    /// [`UserLedger`] (one charge per data vector, all-or-nothing).
    pub fn answer_batch_for<W>(
        &self,
        ledger: &UserLedger,
        workload: Arc<W>,
        xs: Vec<Vec<f64>>,
        seed: u64,
    ) -> BatchFuture<W>
    where
        W: Workload + Send + Sync + ?Sized + 'static,
    {
        self.submit(workload, xs, seed, Some(ledger.clone()))
    }

    /// Answers a structured workload through the engine's matrix-free path
    /// ([`mm_core::Engine::answer_structured`]): noisy observations through
    /// the strategy operator, conjugate-gradient reconstruction, O(n) peak
    /// memory — the path that serves n = 65 536 where the dense tier cannot
    /// even materialise its gram matrix.  The request never enqueues a
    /// worker job (structured selection is O(n log n)); everything runs on
    /// the first poll, and the answer is bit-identical to a direct engine
    /// call with a `StdRng` seeded the same way.
    pub fn answer_structured<W>(
        &self,
        workload: Arc<W>,
        x: Vec<f64>,
        seed: u64,
    ) -> StructuredFuture<W>
    where
        W: StructuredWorkload + Send + Sync + ?Sized + 'static,
    {
        self.submit_structured(workload, x, seed, None)
    }

    /// [`ServeEngine::answer_structured`] charged to a principal's shared
    /// [`UserLedger`]: probed against the ledger's headroom at submit time,
    /// charged in full (actual sensitivity, backend noise scale) on release.
    pub fn answer_structured_for<W>(
        &self,
        ledger: &UserLedger,
        workload: Arc<W>,
        x: Vec<f64>,
        seed: u64,
    ) -> StructuredFuture<W>
    where
        W: StructuredWorkload + Send + Sync + ?Sized + 'static,
    {
        self.submit_structured(workload, x, seed, Some(ledger.clone()))
    }

    fn submit_structured<W>(
        &self,
        workload: Arc<W>,
        x: Vec<f64>,
        seed: u64,
        ledger: Option<UserLedger>,
    ) -> StructuredFuture<W>
    where
        W: StructuredWorkload + Send + Sync + ?Sized + 'static,
    {
        self.inner.submitted.fetch_add(1, Ordering::Relaxed);
        self.inner.structured.fetch_add(1, Ordering::Relaxed);
        // Same admission filter as the dense path — but no gram is ever
        // computed or hashed: the structured descriptor is the identity.
        if let Some(ledger) = &ledger {
            let engine = &self.inner.engine;
            let probe = engine.backend().mechanism_event(engine.privacy(), 1.0);
            if let Err(e) = ledger.check_event_many(&probe, 1) {
                self.inner.rejected.fetch_add(1, Ordering::Relaxed);
                return StructuredFuture::failed(self.inner.clone(), workload, e.into());
            }
        }
        StructuredFuture::new(self.inner.clone(), workload, x, seed, ledger)
    }

    fn submit<W>(
        &self,
        workload: Arc<W>,
        xs: Vec<Vec<f64>>,
        seed: u64,
        ledger: Option<UserLedger>,
    ) -> BatchFuture<W>
    where
        W: Workload + Send + Sync + ?Sized + 'static,
    {
        self.inner.submitted.fetch_add(1, Ordering::Relaxed);
        // The fingerprint is the dedup key for waker registration; a NaN
        // gram is rejected here, before anything is queued or charged.  The
        // base fingerprint is mixed through the engine's plan keying so a
        // low-rank engine's futures wait on (and probe for) the same cache
        // entry its answer path writes.
        let gram = workload.gram();
        let fp = match try_gram_fingerprint(&gram) {
            Ok(base) => self.inner.engine.plan_fingerprint(base, gram.rows()),
            Err(nan) => {
                self.inner.rejected.fetch_add(1, Ordering::Relaxed);
                return BatchFuture::failed(
                    self.inner.clone(),
                    workload,
                    MechanismError::from(nan).into(),
                );
            }
        };
        // Admission against the principal's *shared* headroom: a spent
        // budget fails fast at submit.  The probe uses unit sensitivity (the
        // strategy is not selected yet); the release itself re-checks and
        // charges the event with the actual sensitivity, so this is an
        // admission filter, never the enforcement point.
        if let Some(ledger) = &ledger {
            let engine = &self.inner.engine;
            let probe = engine.backend().mechanism_event(engine.privacy(), 1.0);
            if let Err(e) = ledger.check_event_many(&probe, xs.len()) {
                self.inner.rejected.fetch_add(1, Ordering::Relaxed);
                return BatchFuture::failed(self.inner.clone(), workload, e.into());
            }
        }
        BatchFuture::new(self.inner.clone(), workload, xs, seed, ledger, fp)
    }
}

impl Drop for ServeEngine {
    fn drop(&mut self) {
        self.inner.shutdown.store(true, Ordering::Release);
        self.inner.queue_cv.notify_all();
        self.inner.timer_cv.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
        if let Some(watchdog) = self.watchdog.take() {
            let _ = watchdog.join();
        }
        // Workers drain the queue before exiting, so every admitted job ran;
        // any task still pending here lost its job to a worker that died
        // mid-selection.  Poison it so waiters resolve instead of hanging.
        let leftovers: Vec<Arc<SelectionTask>> = self
            .inner
            .pending
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .drain()
            .map(|(_, task)| task)
            .collect();
        for task in leftovers {
            task.complete(Err(TaskFailure::Mechanism(Arc::new(
                MechanismError::PoisonedSelection(
                    "serving tier shut down before the selection completed".into(),
                ),
            ))));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::{block_on, join_all};
    use mm_core::engine::{PrivacyBudget, SelectionContext, StrategySelector};
    use mm_strategies::Strategy;
    use mm_workload::range::AllRangeWorkload;
    use mm_workload::Domain;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::future::Future;
    use std::pin::Pin;

    fn workload(n: usize) -> Arc<AllRangeWorkload> {
        Arc::new(AllRangeWorkload::new(Domain::one_dim(n)))
    }

    fn data(n: usize) -> Vec<f64> {
        (0..n).map(|i| 50.0 + (i as f64) * 3.0).collect()
    }

    #[test]
    fn served_answers_are_bit_identical_to_sync() {
        let engine = Arc::new(Engine::builder().build().unwrap());
        let serve = ServeEngine::builder(engine.clone()).build();
        let w = workload(12);
        let xs = vec![data(12), data(12).iter().map(|v| v * 2.0).collect()];

        let served = block_on(serve.answer_batch(w.clone(), xs.clone(), 99)).unwrap();
        let mut rng = StdRng::seed_from_u64(99);
        let direct = engine.answer_batch(&*w, &xs, &mut rng).unwrap();

        assert_eq!(served.len(), direct.len());
        for (s, d) in served.iter().zip(&direct) {
            assert_eq!(s.answers.len(), d.answers.len());
            for (a, b) in s.answers.iter().zip(&d.answers) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
        let stats = serve.stats();
        assert_eq!(stats.submitted, 1);
        assert_eq!(stats.completed, 1);
        assert_eq!(stats.selection_jobs, 1);
    }

    #[test]
    fn concurrent_cold_requests_share_one_selection_job() {
        let engine = Arc::new(Engine::builder().build().unwrap());
        let serve = ServeEngine::builder(engine.clone()).workers(4).build();
        let w = workload(16);
        let futures: Vec<_> = (0..8)
            .map(|seed| serve.answer(w.clone(), data(16), seed))
            .collect();
        let answers = block_on(join_all(futures));
        assert!(answers.iter().all(|a| a.is_ok()));

        let stats = serve.stats();
        assert_eq!(stats.submitted, 8);
        assert_eq!(stats.completed, 8);
        // Waker registration, not duplicate work: one cold fingerprint, one
        // selection job, one engine-level selection.
        assert_eq!(stats.selection_jobs, 1);
        assert_eq!(engine.stats().selections, 1);
    }

    /// Delegates to the default selector after waiting for a release signal
    /// (and counts calls), so tests can hold a selection in flight.
    struct GatedSelector {
        release: Arc<(Mutex<bool>, Condvar)>,
        started: Arc<(Mutex<usize>, Condvar)>,
        inner: mm_core::engine::EigenDesignSelector,
    }

    impl std::fmt::Debug for GatedSelector {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("GatedSelector").finish_non_exhaustive()
        }
    }

    impl StrategySelector for GatedSelector {
        fn name(&self) -> String {
            "gated".into()
        }

        fn select(&self, ctx: &SelectionContext) -> mm_core::Result<Strategy> {
            {
                let (count, cv) = &*self.started;
                *count.lock().unwrap() += 1;
                cv.notify_all();
            }
            let (open, cv) = &*self.release;
            let mut open = open.lock().unwrap();
            while !*open {
                open = cv.wait(open).unwrap();
            }
            drop(open);
            self.inner.select(ctx)
        }
    }

    #[test]
    fn full_queue_sheds_with_typed_overload_error() {
        let release = Arc::new((Mutex::new(false), Condvar::new()));
        let started = Arc::new((Mutex::new(0usize), Condvar::new()));
        let engine = Arc::new(
            Engine::builder()
                .selector(GatedSelector {
                    release: release.clone(),
                    started: started.clone(),
                    inner: Default::default(),
                })
                .build()
                .unwrap(),
        );
        let serve = ServeEngine::builder(engine)
            .workers(1)
            .queue_capacity(1)
            .build();

        // Three *distinct* cold workloads: the first occupies the only
        // worker, the second fills the queue, the third must be shed.
        let mut f1 = serve.answer(workload(8), data(8), 1);
        let mut f2 = serve.answer(workload(9), data(9), 2);
        let mut f3 = serve.answer(workload(10), data(10), 3);

        let waker = std::task::Waker::noop();
        let mut cx = std::task::Context::from_waker(waker);
        assert!(Pin::new(&mut f1).poll(&mut cx).is_pending());
        {
            // Wait until the worker has *dequeued* f1's job (the selector
            // reported in), so the queue slot is observably free again.
            let (count, cv) = &*started;
            let mut count = count.lock().unwrap();
            while *count == 0 {
                count = cv.wait(count).unwrap();
            }
        }
        assert!(Pin::new(&mut f2).poll(&mut cx).is_pending());
        match Pin::new(&mut f3).poll(&mut cx) {
            std::task::Poll::Ready(Err(ServeError::Overloaded { capacity })) => {
                assert_eq!(capacity, 1);
            }
            other => panic!("expected typed overload shed, got {other:?}"),
        }
        assert_eq!(serve.stats().shed, 1);

        // Release the gate: both admitted requests still resolve.
        {
            let (open, cv) = &*release;
            *open.lock().unwrap() = true;
            cv.notify_all();
        }
        assert!(block_on(f1).is_ok());
        assert!(block_on(f2).is_ok());
        assert_eq!(serve.stats().completed, 2);
    }

    #[test]
    fn exhausted_shared_budget_rejects_at_submit() {
        let engine = Arc::new(Engine::builder().build().unwrap());
        let per_answer = engine.privacy().epsilon;
        let serve = ServeEngine::builder(engine).build();
        let w = workload(8);
        // Headroom for exactly one answer.
        let ledger = UserLedger::new("carol", PrivacyBudget::new(per_answer * 1.5, 1e-2));

        let first = block_on(serve.answer_for(&ledger, w.clone(), data(8), 1));
        assert!(first.is_ok());
        let second = block_on(serve.answer_for(&ledger, w.clone(), data(8), 2));
        match second {
            Err(ServeError::Mechanism(e)) => {
                assert!(
                    matches!(&*e, MechanismError::BudgetExhausted { .. }),
                    "expected budget exhaustion, got {e}"
                );
            }
            other => panic!("expected budget rejection, got {other:?}"),
        }
        let stats = serve.stats();
        assert_eq!(stats.completed, 1);
        assert_eq!(stats.rejected, 1);
        // The warm selection means the rejection did zero selection work.
        assert_eq!(stats.selection_jobs, 1);
    }

    /// Panics on the first call, then delegates — the recovery path.
    struct PanicOnceSelector {
        panicked: std::sync::atomic::AtomicBool,
        inner: mm_core::engine::EigenDesignSelector,
    }

    impl std::fmt::Debug for PanicOnceSelector {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("PanicOnceSelector").finish_non_exhaustive()
        }
    }

    impl StrategySelector for PanicOnceSelector {
        fn name(&self) -> String {
            "panic-once".into()
        }

        fn select(&self, ctx: &SelectionContext) -> mm_core::Result<Strategy> {
            if !self.panicked.swap(true, Ordering::SeqCst) {
                panic!("injected selector crash");
            }
            self.inner.select(ctx)
        }
    }

    #[test]
    fn panicking_selection_poisons_waiters_then_recovers() {
        let engine = Arc::new(
            Engine::builder()
                .selector(PanicOnceSelector {
                    panicked: std::sync::atomic::AtomicBool::new(false),
                    inner: Default::default(),
                })
                .build()
                .unwrap(),
        );
        let serve = ServeEngine::builder(engine.clone()).workers(1).build();
        let w = workload(8);

        let futures: Vec<_> = (0..4)
            .map(|s| serve.answer(w.clone(), data(8), s))
            .collect();
        let results = block_on(join_all(futures));
        // All four waiters observe the typed poison — nobody hangs.
        for result in &results {
            match result {
                Err(ServeError::Mechanism(e)) => {
                    assert!(matches!(&**e, MechanismError::PoisonedSelection(_)));
                    assert!(e.to_string().contains("injected selector crash"));
                }
                other => panic!("expected poisoned selection, got {other:?}"),
            }
        }
        assert_eq!(serve.stats().failed, 4);

        // The fingerprint is retryable: the next request selects fresh.
        let retry = block_on(serve.answer(w, data(8), 9));
        assert!(retry.is_ok());
        assert_eq!(serve.stats().completed, 1);
        assert_eq!(serve.stats().selection_jobs, 2);
    }

    #[test]
    fn served_structured_answers_are_bit_identical_to_sync() {
        let engine = Arc::new(Engine::builder().build().unwrap());
        let serve = ServeEngine::builder(engine.clone()).build();
        let w = Arc::new(mm_workload::RangeQueryWorkload::prefixes(64));
        let x = data(64);

        let served = block_on(serve.answer_structured(w.clone(), x.clone(), 41)).unwrap();
        let mut rng = StdRng::seed_from_u64(41);
        let direct = engine.answer_structured(&*w, &x, &mut rng).unwrap();

        assert_eq!(served.answers.len(), direct.answers.len());
        for (a, b) in served.answers.iter().zip(&direct.answers) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        let stats = serve.stats();
        assert_eq!(stats.submitted, 1);
        assert_eq!(stats.completed, 1);
        assert_eq!(stats.structured, 1);
        // Structured selection runs inline — the worker pool never sees it.
        assert_eq!(stats.selection_jobs, 0);
    }

    #[test]
    fn structured_budget_is_probed_at_submit_and_charged_on_release() {
        let engine = Arc::new(Engine::builder().build().unwrap());
        let per_answer = engine.privacy().epsilon;
        let serve = ServeEngine::builder(engine).build();
        let w = Arc::new(mm_workload::RangeQueryWorkload::prefixes(16));
        let ledger = UserLedger::new("dave", PrivacyBudget::new(per_answer * 1.5, 1e-2));

        let first = block_on(serve.answer_structured_for(&ledger, w.clone(), data(16), 5));
        assert!(first.is_ok());
        assert!(ledger.spent().epsilon > 0.0);
        let second = block_on(serve.answer_structured_for(&ledger, w, data(16), 6));
        match second {
            Err(ServeError::Mechanism(e)) => {
                assert!(matches!(&*e, MechanismError::BudgetExhausted { .. }));
            }
            other => panic!("expected budget rejection, got {other:?}"),
        }
        let stats = serve.stats();
        assert_eq!(stats.completed, 1);
        assert_eq!(stats.rejected, 1);
        assert_eq!(stats.structured, 2);
    }

    #[test]
    fn nan_gram_is_rejected_before_queueing() {
        let engine = Arc::new(Engine::builder().build().unwrap());
        let serve = ServeEngine::builder(engine).build();
        let w = Arc::new(mm_workload::ExplicitWorkload::new(
            "nan",
            vec![mm_workload::LinearQuery::new(
                2,
                vec![(0, f64::NAN), (1, 1.0)],
            )],
        ));
        let result = block_on(serve.answer(w, vec![1.0, 2.0], 1));
        match result {
            Err(ServeError::Mechanism(e)) => {
                assert!(matches!(&*e, MechanismError::NanWorkloadGram { .. }));
            }
            other => panic!("expected NaN-gram rejection, got {other:?}"),
        }
        let stats = serve.stats();
        assert_eq!(stats.rejected, 1);
        assert_eq!(stats.selection_jobs, 0);
    }

    /// Every `ServeError` variant: Display round-trips its key facts,
    /// `source()` chains exactly for `Mechanism`, and the transient /
    /// permanent classification matches the documented taxonomy.
    #[test]
    fn serve_error_display_source_and_transience_cover_every_variant() {
        use std::error::Error;

        let overloaded = ServeError::Overloaded { capacity: 7 };
        assert!(overloaded.to_string().contains("capacity 7"));
        assert!(overloaded.source().is_none());
        assert!(overloaded.mechanism().is_none());
        assert!(overloaded.is_transient());

        let expired = ServeError::DeadlineExceeded { deadline_ms: 250 };
        assert!(expired.to_string().contains("250 ms"));
        assert!(expired.source().is_none());
        assert!(expired.mechanism().is_none());
        assert!(expired.is_transient());

        let transient_inner = MechanismError::Store("disk gone".into());
        let transient = ServeError::from(transient_inner);
        assert!(transient.to_string().contains("disk gone"));
        assert!(transient
            .source()
            .is_some_and(|s| s.to_string().contains("disk gone")));
        assert!(transient.mechanism().is_some());
        assert!(transient.is_transient());

        let permanent = ServeError::from(MechanismError::InvalidArgument("bad dims".into()));
        assert!(permanent.to_string().contains("bad dims"));
        assert!(permanent
            .source()
            .is_some_and(|s| s.to_string().contains("bad dims")));
        assert!(!permanent.is_transient());
    }

    /// A worker stalled by injected latency pushes the request past its
    /// deadline: the watchdog wakes the parked future, which resolves with
    /// the typed error instead of hanging — and the tier stays serviceable.
    #[test]
    fn deadline_expires_under_injected_worker_latency() {
        use mm_core::{Fault, FaultSchedule, FaultSite};
        use std::time::Duration;

        let engine = Arc::new(
            Engine::builder()
                .fault_injector(FaultSchedule::new().inject_at(
                    FaultSite::Worker,
                    0,
                    Fault::LatencyMs(400),
                ))
                .build()
                .unwrap(),
        );
        let serve = ServeEngine::builder(engine)
            .workers(1)
            .default_deadline(Duration::from_millis(40))
            .build();
        let w = workload(8);

        let started = std::time::Instant::now();
        let result = block_on(serve.answer(w.clone(), data(8), 1));
        match result {
            Err(ServeError::DeadlineExceeded { deadline_ms }) => assert_eq!(deadline_ms, 40),
            other => panic!("expected deadline expiry, got {other:?}"),
        }
        assert!(
            started.elapsed() < Duration::from_millis(350),
            "the watchdog resolved the future before the stalled worker finished"
        );
        assert_eq!(serve.stats().deadline_expired, 1);

        // When the stalled worker finally dequeues the job, the founder's
        // deadline has long passed: the selection is skipped, not run stale.
        let drained = std::time::Instant::now() + Duration::from_secs(5);
        while serve.stats().jobs_expired == 0 && std::time::Instant::now() < drained {
            std::thread::sleep(Duration::from_millis(10));
        }
        assert_eq!(serve.stats().jobs_expired, 1);

        // Only the first dequeue was stalled; with the worker free again, a
        // fresh request (its own full deadline) founds a new flight and
        // succeeds.
        let retry = block_on(serve.answer(w, data(8), 2));
        assert!(retry.is_ok(), "tier stays serviceable: {retry:?}");
        let stats = serve.stats();
        assert_eq!(stats.completed, 1);
        assert_eq!(stats.deadline_expired, 1);
    }

    /// A queued job whose founder's deadline passed before a worker got to
    /// it is skipped (`jobs_expired`), never run stale — and a later
    /// request for the same workload selects fresh.
    #[test]
    fn queued_jobs_expire_instead_of_running_stale() {
        use std::time::Duration;

        let release = Arc::new((Mutex::new(false), Condvar::new()));
        let started = Arc::new((Mutex::new(0usize), Condvar::new()));
        let engine = Arc::new(
            Engine::builder()
                .selector(GatedSelector {
                    release: release.clone(),
                    started: started.clone(),
                    inner: Default::default(),
                })
                .build()
                .unwrap(),
        );
        let serve = ServeEngine::builder(engine).workers(1).build();

        // f1 occupies the only worker (no deadline); f2's job sits queued
        // behind it with a deadline that will pass before it can run.
        let mut f1 = serve.answer(workload(8), data(8), 1);
        let waker = std::task::Waker::noop();
        let mut cx = std::task::Context::from_waker(waker);
        assert!(Pin::new(&mut f1).poll(&mut cx).is_pending());
        {
            let (count, cv) = &*started;
            let mut count = count.lock().unwrap();
            while *count == 0 {
                count = cv.wait(count).unwrap();
            }
        }
        let mut f2 = serve
            .answer(workload(9), data(9), 2)
            .deadline(Duration::from_millis(20));
        assert!(Pin::new(&mut f2).poll(&mut cx).is_pending());
        std::thread::sleep(Duration::from_millis(40));

        // Release the gate: the worker finishes f1's selection, then
        // dequeues f2's job and skips it as expired.
        {
            let (open, cv) = &*release;
            *open.lock().unwrap() = true;
            cv.notify_all();
        }
        assert!(block_on(f1).is_ok());
        match block_on(f2) {
            Err(ServeError::DeadlineExceeded { deadline_ms }) => assert_eq!(deadline_ms, 20),
            other => panic!("expected deadline expiry, got {other:?}"),
        }
        // The skip is observable once the worker has drained the queue.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while serve.stats().jobs_expired == 0 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        let stats = serve.stats();
        assert_eq!(stats.jobs_expired, 1);
        assert_eq!(stats.deadline_expired, 1);

        // The expired fingerprint is retryable: a fresh (undeadlined)
        // request founds a new flight and resolves.
        let retry = block_on(serve.answer(workload(9), data(9), 3));
        assert!(retry.is_ok(), "expired job slot is retryable: {retry:?}");
    }

    /// `health()` composes the tier's own gauges with the engine's store
    /// health into one snapshot.
    #[test]
    fn health_snapshot_reflects_load_and_store_state() {
        use mm_core::engine::BreakerState;

        let engine = Arc::new(Engine::builder().build().unwrap());
        let serve = ServeEngine::builder(engine).queue_capacity(5).build();
        let h = serve.health();
        assert_eq!(h.queue_depth, 0);
        assert_eq!(h.queue_capacity, 5);
        assert_eq!(h.pending_selections, 0);
        assert_eq!(h.store.breaker, BreakerState::Closed);
        assert_eq!(h.store.corrupt_dropped, 0);
        assert_eq!(h.store.save_failures, 0);

        let w = workload(8);
        assert!(block_on(serve.answer(w, data(8), 1)).is_ok());
        let h = serve.health();
        assert_eq!(h.pending_selections, 0, "flight resolved");
        assert_eq!(h.poisoned_flights, 0);
    }
}
