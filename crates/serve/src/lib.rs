//! # mm-serve
//!
//! The async serving tier over [`mm_core`]'s engine: hand-rolled,
//! executor-agnostic futures, bounded admission, and shared per-principal
//! budgets — the long-lived, warm, budget-governed query-answering layer the
//! matrix mechanism's data-independent selection makes possible.
//!
//! Three properties distinguish it from calling the engine directly:
//!
//! * **Non-blocking waits.** `Engine::answer` on a cold workload blocks an
//!   OS thread in the cache's single-flight wait.  [`ServeEngine::answer`]
//!   instead returns a [`Future`](std::future::Future): a cache miss
//!   enqueues one selection job on the worker pool, concurrent requests for
//!   the same fingerprint *register wakers* on the in-flight job (no
//!   duplicate selection, no blocked executor threads), and every waiter
//!   resumes when the job completes.  The futures are plain `std` futures —
//!   drive them with any runtime, or with the bundled [`block_on`] /
//!   [`join_all`].
//! * **Bounded admission.** The selection queue is bounded; when it is full,
//!   new cold-workload requests fail fast with [`ServeError::Overloaded`]
//!   instead of queueing without limit.  Requests charged to a
//!   [`UserLedger`] are additionally probed against the principal's shared
//!   budget headroom at submit time, so a spent budget rejects before any
//!   work is queued.
//! * **Typed failure.** A selection job that returns an error or panics
//!   poisons only that flight: every waiter receives a typed
//!   [`MechanismError::PoisonedSelection`] / the selector's error, and the
//!   fingerprint can be retried fresh.
//!
//! Answers are produced by the engine's own paths, so everything the engine
//! guarantees (bit-identical batching, persistent-store round-trips, budget
//! fail-closed semantics) holds verbatim when served through this crate.
//!
//! # Example
//!
//! ```
//! use mm_core::engine::{Engine, PrivacyBudget};
//! use mm_core::accounting::UserLedger;
//! use mm_serve::{block_on, join_all, ServeEngine};
//! use mm_workload::range::AllRangeWorkload;
//! use mm_workload::Domain;
//! use std::sync::Arc;
//!
//! let engine = Arc::new(Engine::builder().build().unwrap());
//! let serve = ServeEngine::builder(engine).workers(2).build();
//! let workload = Arc::new(AllRangeWorkload::new(Domain::one_dim(16)));
//! let x: Vec<f64> = (0..16).map(|i| 10.0 + i as f64).collect();
//!
//! // Two concurrent requests for one cold workload: one selection job runs,
//! // both futures resolve.
//! let a = serve.answer(workload.clone(), x.clone(), 1);
//! let b = serve.answer(workload.clone(), x.clone(), 2);
//! let answers = block_on(join_all(vec![a, b]));
//! assert!(answers.iter().all(|a| a.is_ok()));
//!
//! // Budget-governed serving: sessions share the principal's one ledger.
//! let ledger = UserLedger::new("alice", PrivacyBudget::new(1.0, 1e-3));
//! let answer = block_on(serve.answer_for(&ledger, workload, x, 3)).unwrap();
//! assert_eq!(answer.answers.len(), 16 * 17 / 2);
//! assert!(ledger.spent().epsilon > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod executor;
mod future;

pub use executor::{block_on, join_all, JoinAll};
pub use future::{AnswerFuture, BatchFuture, StructuredFuture};

use mm_core::accounting::UserLedger;
use mm_core::engine::Engine;
use mm_core::MechanismError;
use mm_workload::{try_gram_fingerprint, StructuredWorkload, Workload};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};

use future::SelectionTask;

/// Default number of selection worker threads.
pub const DEFAULT_WORKERS: usize = 2;

/// Default bound on queued selection jobs before load is shed.
pub const DEFAULT_QUEUE_CAPACITY: usize = 64;

/// Why the serving tier failed a request.
#[derive(Debug, Clone)]
pub enum ServeError {
    /// The selection queue was full: the request was shed at admission
    /// without doing any work.  Retry later, or grow the queue/worker pool.
    Overloaded {
        /// The configured queue bound that was hit.
        capacity: usize,
    },
    /// The underlying mechanism failed (selector error, poisoned selection,
    /// exhausted budget, invalid argument, …).  Shared, because one failed
    /// selection can fail many waiting requests.
    Mechanism(Arc<MechanismError>),
}

impl ServeError {
    /// The mechanism error inside, if this is [`ServeError::Mechanism`].
    pub fn mechanism(&self) -> Option<&MechanismError> {
        match self {
            ServeError::Mechanism(e) => Some(e),
            ServeError::Overloaded { .. } => None,
        }
    }
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Overloaded { capacity } => write!(
                f,
                "serving tier overloaded: selection queue at capacity {capacity}"
            ),
            ServeError::Mechanism(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<MechanismError> for ServeError {
    fn from(e: MechanismError) -> Self {
        ServeError::Mechanism(Arc::new(e))
    }
}

/// Request counters of a [`ServeEngine`] (monotone since construction).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServeStats {
    /// Futures created by `answer`/`answer_batch` (and the `_for` variants).
    pub submitted: u64,
    /// Requests that resolved with answers.
    pub completed: u64,
    /// Requests that resolved with a mechanism error.
    pub failed: u64,
    /// Requests shed with [`ServeError::Overloaded`] (queue full).
    pub shed: u64,
    /// Requests rejected at submit time (budget headroom, NaN gram).
    pub rejected: u64,
    /// Selection jobs enqueued on the worker pool — with waker-based
    /// deduplication this stays at one per distinct cold fingerprint no
    /// matter how many requests pile onto it.
    pub selection_jobs: u64,
    /// Requests submitted through the structured (matrix-free) path
    /// ([`ServeEngine::answer_structured`]); these never enqueue worker
    /// jobs, so they are excluded from `selection_jobs`.
    pub structured: u64,
}

pub(crate) type Job = Box<dyn FnOnce() + Send + 'static>;

pub(crate) struct Inner {
    pub(crate) engine: Arc<Engine>,
    queue: Mutex<VecDeque<Job>>,
    queue_cv: Condvar,
    queue_capacity: usize,
    shutdown: AtomicBool,
    pub(crate) pending: Mutex<HashMap<u64, Arc<SelectionTask>>>,
    pub(crate) submitted: AtomicU64,
    pub(crate) completed: AtomicU64,
    pub(crate) failed: AtomicU64,
    pub(crate) shed: AtomicU64,
    pub(crate) rejected: AtomicU64,
    pub(crate) selection_jobs: AtomicU64,
    pub(crate) structured: AtomicU64,
}

impl std::fmt::Debug for Inner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Inner")
            .field("queue_capacity", &self.queue_capacity)
            .finish_non_exhaustive()
    }
}

impl Inner {
    /// Enqueues a selection job unless the queue is full.
    ///
    /// Lock poisoning is recovered throughout this tier: the queue and
    /// pending maps hold plain data that is never left half-updated across a
    /// panic (jobs are pushed/popped whole), so the poison flag carries no
    /// information — and propagating it would panic every waiter.
    pub(crate) fn try_enqueue(&self, job: Job) -> bool {
        let mut queue = self.queue.lock().unwrap_or_else(PoisonError::into_inner);
        if queue.len() >= self.queue_capacity {
            return false;
        }
        queue.push_back(job);
        self.queue_cv.notify_one();
        true
    }

    pub(crate) fn queue_capacity(&self) -> usize {
        self.queue_capacity
    }

    fn worker_loop(&self) {
        loop {
            let job = {
                let mut queue = self.queue.lock().unwrap_or_else(PoisonError::into_inner);
                loop {
                    if let Some(job) = queue.pop_front() {
                        break Some(job);
                    }
                    if self.shutdown.load(Ordering::Acquire) {
                        break None;
                    }
                    queue = self
                        .queue_cv
                        .wait(queue)
                        .unwrap_or_else(PoisonError::into_inner);
                }
            };
            match job {
                Some(job) => job(),
                None => return, // shutdown with a drained queue
            }
        }
    }
}

/// Builder for [`ServeEngine`].
#[derive(Debug)]
pub struct ServeEngineBuilder {
    engine: Arc<Engine>,
    workers: usize,
    queue_capacity: usize,
}

impl ServeEngineBuilder {
    /// Number of selection worker threads (min 1; default
    /// [`DEFAULT_WORKERS`]).  Workers only run strategy selections — answer
    /// assembly happens on the polling task — so size this to the number of
    /// concurrent *cold* workloads you expect, not to request throughput.
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Bound on queued selection jobs before new cold-workload requests are
    /// shed with [`ServeError::Overloaded`] (min 1; default
    /// [`DEFAULT_QUEUE_CAPACITY`]).
    pub fn queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity.max(1);
        self
    }

    /// Builds the serving engine and starts its worker threads.
    pub fn build(self) -> ServeEngine {
        let inner = Arc::new(Inner {
            engine: self.engine,
            queue: Mutex::new(VecDeque::new()),
            queue_cv: Condvar::new(),
            queue_capacity: self.queue_capacity,
            shutdown: AtomicBool::new(false),
            pending: Mutex::new(HashMap::new()),
            submitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            selection_jobs: AtomicU64::new(0),
            structured: AtomicU64::new(0),
        });
        let workers = (0..self.workers)
            .map(|i| {
                let inner = inner.clone();
                std::thread::Builder::new()
                    .name(format!("mm-serve-{i}"))
                    .spawn(move || inner.worker_loop())
                    // mm-lint: allow(serve-panic-freedom): spawn runs at construction, before any flight exists — failing fast at startup cannot poison a waiter
                    .expect("spawn serve worker")
            })
            .collect();
        ServeEngine { inner, workers }
    }
}

/// The async front-end over an [`Engine`]: see the crate docs.
///
/// Dropping the `ServeEngine` stops the worker pool: queued selection jobs
/// are drained first, so every already-admitted future still resolves.
#[derive(Debug)]
pub struct ServeEngine {
    inner: Arc<Inner>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl ServeEngine {
    /// Starts building a serving tier over an engine.
    pub fn builder(engine: Arc<Engine>) -> ServeEngineBuilder {
        ServeEngineBuilder {
            engine,
            workers: DEFAULT_WORKERS,
            queue_capacity: DEFAULT_QUEUE_CAPACITY,
        }
    }

    /// The engine answers are produced by.
    pub fn engine(&self) -> &Arc<Engine> {
        &self.inner.engine
    }

    /// Request counters.
    pub fn stats(&self) -> ServeStats {
        ServeStats {
            submitted: self.inner.submitted.load(Ordering::Relaxed),
            completed: self.inner.completed.load(Ordering::Relaxed),
            failed: self.inner.failed.load(Ordering::Relaxed),
            shed: self.inner.shed.load(Ordering::Relaxed),
            rejected: self.inner.rejected.load(Ordering::Relaxed),
            selection_jobs: self.inner.selection_jobs.load(Ordering::Relaxed),
            structured: self.inner.structured.load(Ordering::Relaxed),
        }
    }

    /// Answers one workload on one data vector at the engine's privacy
    /// parameters; resolves to the engine's answer.  `seed` determines the
    /// noise draw: a served answer is bit-identical to a direct
    /// `engine.answer` with a `StdRng` seeded the same way.
    pub fn answer<W>(&self, workload: Arc<W>, x: Vec<f64>, seed: u64) -> AnswerFuture<W>
    where
        W: Workload + Send + Sync + ?Sized + 'static,
    {
        AnswerFuture::new(self.submit(workload, vec![x], seed, None))
    }

    /// [`ServeEngine::answer`] charged to a principal's shared
    /// [`UserLedger`]: the request is probed against the ledger's headroom
    /// at submit time and charged on release, so concurrent sessions of one
    /// principal can never jointly over-spend.
    pub fn answer_for<W>(
        &self,
        ledger: &UserLedger,
        workload: Arc<W>,
        x: Vec<f64>,
        seed: u64,
    ) -> AnswerFuture<W>
    where
        W: Workload + Send + Sync + ?Sized + 'static,
    {
        AnswerFuture::new(self.submit(workload, vec![x], seed, Some(ledger.clone())))
    }

    /// Answers one workload on many data vectors (one noise draw each, one
    /// cache/selection round for all — the engine's vectorised batch path).
    pub fn answer_batch<W>(&self, workload: Arc<W>, xs: Vec<Vec<f64>>, seed: u64) -> BatchFuture<W>
    where
        W: Workload + Send + Sync + ?Sized + 'static,
    {
        self.submit(workload, xs, seed, None)
    }

    /// [`ServeEngine::answer_batch`] charged to a principal's shared
    /// [`UserLedger`] (one charge per data vector, all-or-nothing).
    pub fn answer_batch_for<W>(
        &self,
        ledger: &UserLedger,
        workload: Arc<W>,
        xs: Vec<Vec<f64>>,
        seed: u64,
    ) -> BatchFuture<W>
    where
        W: Workload + Send + Sync + ?Sized + 'static,
    {
        self.submit(workload, xs, seed, Some(ledger.clone()))
    }

    /// Answers a structured workload through the engine's matrix-free path
    /// ([`mm_core::Engine::answer_structured`]): noisy observations through
    /// the strategy operator, conjugate-gradient reconstruction, O(n) peak
    /// memory — the path that serves n = 65 536 where the dense tier cannot
    /// even materialise its gram matrix.  The request never enqueues a
    /// worker job (structured selection is O(n log n)); everything runs on
    /// the first poll, and the answer is bit-identical to a direct engine
    /// call with a `StdRng` seeded the same way.
    pub fn answer_structured<W>(
        &self,
        workload: Arc<W>,
        x: Vec<f64>,
        seed: u64,
    ) -> StructuredFuture<W>
    where
        W: StructuredWorkload + Send + Sync + ?Sized + 'static,
    {
        self.submit_structured(workload, x, seed, None)
    }

    /// [`ServeEngine::answer_structured`] charged to a principal's shared
    /// [`UserLedger`]: probed against the ledger's headroom at submit time,
    /// charged in full (actual sensitivity, backend noise scale) on release.
    pub fn answer_structured_for<W>(
        &self,
        ledger: &UserLedger,
        workload: Arc<W>,
        x: Vec<f64>,
        seed: u64,
    ) -> StructuredFuture<W>
    where
        W: StructuredWorkload + Send + Sync + ?Sized + 'static,
    {
        self.submit_structured(workload, x, seed, Some(ledger.clone()))
    }

    fn submit_structured<W>(
        &self,
        workload: Arc<W>,
        x: Vec<f64>,
        seed: u64,
        ledger: Option<UserLedger>,
    ) -> StructuredFuture<W>
    where
        W: StructuredWorkload + Send + Sync + ?Sized + 'static,
    {
        self.inner.submitted.fetch_add(1, Ordering::Relaxed);
        self.inner.structured.fetch_add(1, Ordering::Relaxed);
        // Same admission filter as the dense path — but no gram is ever
        // computed or hashed: the structured descriptor is the identity.
        if let Some(ledger) = &ledger {
            let engine = &self.inner.engine;
            let probe = engine.backend().mechanism_event(engine.privacy(), 1.0);
            if let Err(e) = ledger.check_event_many(&probe, 1) {
                self.inner.rejected.fetch_add(1, Ordering::Relaxed);
                return StructuredFuture::failed(self.inner.clone(), workload, e.into());
            }
        }
        StructuredFuture::new(self.inner.clone(), workload, x, seed, ledger)
    }

    fn submit<W>(
        &self,
        workload: Arc<W>,
        xs: Vec<Vec<f64>>,
        seed: u64,
        ledger: Option<UserLedger>,
    ) -> BatchFuture<W>
    where
        W: Workload + Send + Sync + ?Sized + 'static,
    {
        self.inner.submitted.fetch_add(1, Ordering::Relaxed);
        // The fingerprint is the dedup key for waker registration; a NaN
        // gram is rejected here, before anything is queued or charged.  The
        // base fingerprint is mixed through the engine's plan keying so a
        // low-rank engine's futures wait on (and probe for) the same cache
        // entry its answer path writes.
        let gram = workload.gram();
        let fp = match try_gram_fingerprint(&gram) {
            Ok(base) => self.inner.engine.plan_fingerprint(base, gram.rows()),
            Err(nan) => {
                self.inner.rejected.fetch_add(1, Ordering::Relaxed);
                return BatchFuture::failed(
                    self.inner.clone(),
                    workload,
                    MechanismError::from(nan).into(),
                );
            }
        };
        // Admission against the principal's *shared* headroom: a spent
        // budget fails fast at submit.  The probe uses unit sensitivity (the
        // strategy is not selected yet); the release itself re-checks and
        // charges the event with the actual sensitivity, so this is an
        // admission filter, never the enforcement point.
        if let Some(ledger) = &ledger {
            let engine = &self.inner.engine;
            let probe = engine.backend().mechanism_event(engine.privacy(), 1.0);
            if let Err(e) = ledger.check_event_many(&probe, xs.len()) {
                self.inner.rejected.fetch_add(1, Ordering::Relaxed);
                return BatchFuture::failed(self.inner.clone(), workload, e.into());
            }
        }
        BatchFuture::new(self.inner.clone(), workload, xs, seed, ledger, fp)
    }
}

impl Drop for ServeEngine {
    fn drop(&mut self) {
        self.inner.shutdown.store(true, Ordering::Release);
        self.inner.queue_cv.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
        // Workers drain the queue before exiting, so every admitted job ran;
        // any task still pending here lost its job to a worker that died
        // mid-selection.  Poison it so waiters resolve instead of hanging.
        let leftovers: Vec<Arc<SelectionTask>> = self
            .inner
            .pending
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .drain()
            .map(|(_, task)| task)
            .collect();
        for task in leftovers {
            task.complete(Err(Arc::new(MechanismError::PoisonedSelection(
                "serving tier shut down before the selection completed".into(),
            ))));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::{block_on, join_all};
    use mm_core::engine::{PrivacyBudget, SelectionContext, StrategySelector};
    use mm_strategies::Strategy;
    use mm_workload::range::AllRangeWorkload;
    use mm_workload::Domain;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::future::Future;
    use std::pin::Pin;

    fn workload(n: usize) -> Arc<AllRangeWorkload> {
        Arc::new(AllRangeWorkload::new(Domain::one_dim(n)))
    }

    fn data(n: usize) -> Vec<f64> {
        (0..n).map(|i| 50.0 + (i as f64) * 3.0).collect()
    }

    #[test]
    fn served_answers_are_bit_identical_to_sync() {
        let engine = Arc::new(Engine::builder().build().unwrap());
        let serve = ServeEngine::builder(engine.clone()).build();
        let w = workload(12);
        let xs = vec![data(12), data(12).iter().map(|v| v * 2.0).collect()];

        let served = block_on(serve.answer_batch(w.clone(), xs.clone(), 99)).unwrap();
        let mut rng = StdRng::seed_from_u64(99);
        let direct = engine.answer_batch(&*w, &xs, &mut rng).unwrap();

        assert_eq!(served.len(), direct.len());
        for (s, d) in served.iter().zip(&direct) {
            assert_eq!(s.answers.len(), d.answers.len());
            for (a, b) in s.answers.iter().zip(&d.answers) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
        let stats = serve.stats();
        assert_eq!(stats.submitted, 1);
        assert_eq!(stats.completed, 1);
        assert_eq!(stats.selection_jobs, 1);
    }

    #[test]
    fn concurrent_cold_requests_share_one_selection_job() {
        let engine = Arc::new(Engine::builder().build().unwrap());
        let serve = ServeEngine::builder(engine.clone()).workers(4).build();
        let w = workload(16);
        let futures: Vec<_> = (0..8)
            .map(|seed| serve.answer(w.clone(), data(16), seed))
            .collect();
        let answers = block_on(join_all(futures));
        assert!(answers.iter().all(|a| a.is_ok()));

        let stats = serve.stats();
        assert_eq!(stats.submitted, 8);
        assert_eq!(stats.completed, 8);
        // Waker registration, not duplicate work: one cold fingerprint, one
        // selection job, one engine-level selection.
        assert_eq!(stats.selection_jobs, 1);
        assert_eq!(engine.stats().selections, 1);
    }

    /// Delegates to the default selector after waiting for a release signal
    /// (and counts calls), so tests can hold a selection in flight.
    struct GatedSelector {
        release: Arc<(Mutex<bool>, Condvar)>,
        started: Arc<(Mutex<usize>, Condvar)>,
        inner: mm_core::engine::EigenDesignSelector,
    }

    impl std::fmt::Debug for GatedSelector {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("GatedSelector").finish_non_exhaustive()
        }
    }

    impl StrategySelector for GatedSelector {
        fn name(&self) -> String {
            "gated".into()
        }

        fn select(&self, ctx: &SelectionContext) -> mm_core::Result<Strategy> {
            {
                let (count, cv) = &*self.started;
                *count.lock().unwrap() += 1;
                cv.notify_all();
            }
            let (open, cv) = &*self.release;
            let mut open = open.lock().unwrap();
            while !*open {
                open = cv.wait(open).unwrap();
            }
            drop(open);
            self.inner.select(ctx)
        }
    }

    #[test]
    fn full_queue_sheds_with_typed_overload_error() {
        let release = Arc::new((Mutex::new(false), Condvar::new()));
        let started = Arc::new((Mutex::new(0usize), Condvar::new()));
        let engine = Arc::new(
            Engine::builder()
                .selector(GatedSelector {
                    release: release.clone(),
                    started: started.clone(),
                    inner: Default::default(),
                })
                .build()
                .unwrap(),
        );
        let serve = ServeEngine::builder(engine)
            .workers(1)
            .queue_capacity(1)
            .build();

        // Three *distinct* cold workloads: the first occupies the only
        // worker, the second fills the queue, the third must be shed.
        let mut f1 = serve.answer(workload(8), data(8), 1);
        let mut f2 = serve.answer(workload(9), data(9), 2);
        let mut f3 = serve.answer(workload(10), data(10), 3);

        let waker = std::task::Waker::noop();
        let mut cx = std::task::Context::from_waker(waker);
        assert!(Pin::new(&mut f1).poll(&mut cx).is_pending());
        {
            // Wait until the worker has *dequeued* f1's job (the selector
            // reported in), so the queue slot is observably free again.
            let (count, cv) = &*started;
            let mut count = count.lock().unwrap();
            while *count == 0 {
                count = cv.wait(count).unwrap();
            }
        }
        assert!(Pin::new(&mut f2).poll(&mut cx).is_pending());
        match Pin::new(&mut f3).poll(&mut cx) {
            std::task::Poll::Ready(Err(ServeError::Overloaded { capacity })) => {
                assert_eq!(capacity, 1);
            }
            other => panic!("expected typed overload shed, got {other:?}"),
        }
        assert_eq!(serve.stats().shed, 1);

        // Release the gate: both admitted requests still resolve.
        {
            let (open, cv) = &*release;
            *open.lock().unwrap() = true;
            cv.notify_all();
        }
        assert!(block_on(f1).is_ok());
        assert!(block_on(f2).is_ok());
        assert_eq!(serve.stats().completed, 2);
    }

    #[test]
    fn exhausted_shared_budget_rejects_at_submit() {
        let engine = Arc::new(Engine::builder().build().unwrap());
        let per_answer = engine.privacy().epsilon;
        let serve = ServeEngine::builder(engine).build();
        let w = workload(8);
        // Headroom for exactly one answer.
        let ledger = UserLedger::new("carol", PrivacyBudget::new(per_answer * 1.5, 1e-2));

        let first = block_on(serve.answer_for(&ledger, w.clone(), data(8), 1));
        assert!(first.is_ok());
        let second = block_on(serve.answer_for(&ledger, w.clone(), data(8), 2));
        match second {
            Err(ServeError::Mechanism(e)) => {
                assert!(
                    matches!(&*e, MechanismError::BudgetExhausted { .. }),
                    "expected budget exhaustion, got {e}"
                );
            }
            other => panic!("expected budget rejection, got {other:?}"),
        }
        let stats = serve.stats();
        assert_eq!(stats.completed, 1);
        assert_eq!(stats.rejected, 1);
        // The warm selection means the rejection did zero selection work.
        assert_eq!(stats.selection_jobs, 1);
    }

    /// Panics on the first call, then delegates — the recovery path.
    struct PanicOnceSelector {
        panicked: std::sync::atomic::AtomicBool,
        inner: mm_core::engine::EigenDesignSelector,
    }

    impl std::fmt::Debug for PanicOnceSelector {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("PanicOnceSelector").finish_non_exhaustive()
        }
    }

    impl StrategySelector for PanicOnceSelector {
        fn name(&self) -> String {
            "panic-once".into()
        }

        fn select(&self, ctx: &SelectionContext) -> mm_core::Result<Strategy> {
            if !self.panicked.swap(true, Ordering::SeqCst) {
                panic!("injected selector crash");
            }
            self.inner.select(ctx)
        }
    }

    #[test]
    fn panicking_selection_poisons_waiters_then_recovers() {
        let engine = Arc::new(
            Engine::builder()
                .selector(PanicOnceSelector {
                    panicked: std::sync::atomic::AtomicBool::new(false),
                    inner: Default::default(),
                })
                .build()
                .unwrap(),
        );
        let serve = ServeEngine::builder(engine.clone()).workers(1).build();
        let w = workload(8);

        let futures: Vec<_> = (0..4)
            .map(|s| serve.answer(w.clone(), data(8), s))
            .collect();
        let results = block_on(join_all(futures));
        // All four waiters observe the typed poison — nobody hangs.
        for result in &results {
            match result {
                Err(ServeError::Mechanism(e)) => {
                    assert!(matches!(&**e, MechanismError::PoisonedSelection(_)));
                    assert!(e.to_string().contains("injected selector crash"));
                }
                other => panic!("expected poisoned selection, got {other:?}"),
            }
        }
        assert_eq!(serve.stats().failed, 4);

        // The fingerprint is retryable: the next request selects fresh.
        let retry = block_on(serve.answer(w, data(8), 9));
        assert!(retry.is_ok());
        assert_eq!(serve.stats().completed, 1);
        assert_eq!(serve.stats().selection_jobs, 2);
    }

    #[test]
    fn served_structured_answers_are_bit_identical_to_sync() {
        let engine = Arc::new(Engine::builder().build().unwrap());
        let serve = ServeEngine::builder(engine.clone()).build();
        let w = Arc::new(mm_workload::RangeQueryWorkload::prefixes(64));
        let x = data(64);

        let served = block_on(serve.answer_structured(w.clone(), x.clone(), 41)).unwrap();
        let mut rng = StdRng::seed_from_u64(41);
        let direct = engine.answer_structured(&*w, &x, &mut rng).unwrap();

        assert_eq!(served.answers.len(), direct.answers.len());
        for (a, b) in served.answers.iter().zip(&direct.answers) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        let stats = serve.stats();
        assert_eq!(stats.submitted, 1);
        assert_eq!(stats.completed, 1);
        assert_eq!(stats.structured, 1);
        // Structured selection runs inline — the worker pool never sees it.
        assert_eq!(stats.selection_jobs, 0);
    }

    #[test]
    fn structured_budget_is_probed_at_submit_and_charged_on_release() {
        let engine = Arc::new(Engine::builder().build().unwrap());
        let per_answer = engine.privacy().epsilon;
        let serve = ServeEngine::builder(engine).build();
        let w = Arc::new(mm_workload::RangeQueryWorkload::prefixes(16));
        let ledger = UserLedger::new("dave", PrivacyBudget::new(per_answer * 1.5, 1e-2));

        let first = block_on(serve.answer_structured_for(&ledger, w.clone(), data(16), 5));
        assert!(first.is_ok());
        assert!(ledger.spent().epsilon > 0.0);
        let second = block_on(serve.answer_structured_for(&ledger, w, data(16), 6));
        match second {
            Err(ServeError::Mechanism(e)) => {
                assert!(matches!(&*e, MechanismError::BudgetExhausted { .. }));
            }
            other => panic!("expected budget rejection, got {other:?}"),
        }
        let stats = serve.stats();
        assert_eq!(stats.completed, 1);
        assert_eq!(stats.rejected, 1);
        assert_eq!(stats.structured, 2);
    }

    #[test]
    fn nan_gram_is_rejected_before_queueing() {
        let engine = Arc::new(Engine::builder().build().unwrap());
        let serve = ServeEngine::builder(engine).build();
        let w = Arc::new(mm_workload::ExplicitWorkload::new(
            "nan",
            vec![mm_workload::LinearQuery::new(
                2,
                vec![(0, f64::NAN), (1, 1.0)],
            )],
        ));
        let result = block_on(serve.answer(w, vec![1.0, 2.0], 1));
        match result {
            Err(ServeError::Mechanism(e)) => {
                assert!(matches!(&*e, MechanismError::NanWorkloadGram { .. }));
            }
            other => panic!("expected NaN-gram rejection, got {other:?}"),
        }
        let stats = serve.stats();
        assert_eq!(stats.rejected, 1);
        assert_eq!(stats.selection_jobs, 0);
    }
}
