//! A minimal, dependency-free executor surface: [`block_on`] to drive one
//! future from a plain thread, and [`join_all`] to multiplex many.
//!
//! The serving futures in this crate are executor-agnostic — they only need
//! *something* to call `poll` and honor wakers.  Any real async runtime
//! qualifies; these two helpers make the crate (and its benches and tests)
//! self-sufficient without one, per the workspace's no-new-dependencies
//! constraint.

use std::future::Future;
use std::pin::pin;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::task::{Context, Poll, Wake, Waker};

/// Parks the calling thread until woken; the flag absorbs wakes that land
/// between a `poll` and the park (no lost-wakeup window).
struct ThreadWaker {
    thread: std::thread::Thread,
    notified: AtomicBool,
}

impl Wake for ThreadWaker {
    fn wake(self: Arc<Self>) {
        self.notified.store(true, Ordering::Release);
        self.thread.unpark();
    }

    fn wake_by_ref(self: &Arc<Self>) {
        self.notified.store(true, Ordering::Release);
        self.thread.unpark();
    }
}

/// Drives a future to completion on the calling thread, parking between
/// polls.  This is the synchronous edge of the serving tier: a CLI, a test,
/// or a bench can consume [`crate::ServeEngine`] futures without an async
/// runtime.
pub fn block_on<F: Future>(future: F) -> F::Output {
    let thread_waker = Arc::new(ThreadWaker {
        thread: std::thread::current(),
        notified: AtomicBool::new(false),
    });
    let waker = Waker::from(thread_waker.clone());
    let mut cx = Context::from_waker(&waker);
    let mut future = pin!(future);
    loop {
        match future.as_mut().poll(&mut cx) {
            Poll::Ready(value) => return value,
            Poll::Pending => {
                while !thread_waker.notified.swap(false, Ordering::Acquire) {
                    std::thread::park();
                }
            }
        }
    }
}

/// Future returned by [`join_all`]: resolves once every input future has,
/// yielding their outputs in input order.
#[derive(Debug)]
pub struct JoinAll<F: Future + Unpin> {
    futures: Vec<Option<F>>,
    outputs: Vec<Option<F::Output>>,
}

/// Runs a set of futures concurrently (from whatever task polls the result),
/// completing with all their outputs in input order.
///
/// Every still-pending future is polled on each wake — O(K) per wake, the
/// right trade for the serving benches this backs (K clients, no intrusive
/// per-future wakers, zero dependencies).
pub fn join_all<F: Future + Unpin>(futures: Vec<F>) -> JoinAll<F> {
    let outputs = futures.iter().map(|_| None).collect();
    JoinAll {
        futures: futures.into_iter().map(Some).collect(),
        outputs,
    }
}

// Outputs are plain stored values (they are only ever moved out whole), so
// `JoinAll` is `Unpin` whenever its futures are, regardless of the output
// type.  Declaring it lets `poll` use `get_mut` without `F::Output: Unpin`.
impl<F: Future + Unpin> Unpin for JoinAll<F> {}

impl<F: Future + Unpin> Future for JoinAll<F> {
    type Output = Vec<F::Output>;

    fn poll(self: std::pin::Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let this = self.get_mut();
        let mut all_done = true;
        for (slot, out) in this.futures.iter_mut().zip(this.outputs.iter_mut()) {
            if let Some(fut) = slot {
                match std::pin::Pin::new(fut).poll(cx) {
                    Poll::Ready(value) => {
                        *out = Some(value);
                        *slot = None;
                    }
                    Poll::Pending => all_done = false,
                }
            }
        }
        if all_done {
            // `all_done` implies every output slot was filled when its
            // future resolved, so the collect cannot come up short; the
            // `None` arm exists only to keep this path panic-free.
            match this
                .outputs
                .iter_mut()
                .map(Option::take)
                .collect::<Option<Vec<_>>>()
            {
                Some(outputs) => Poll::Ready(outputs),
                None => Poll::Pending,
            }
        } else {
            Poll::Pending
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A future that stays pending for a fixed number of polls, waking
    /// itself immediately each time.
    struct CountDown(u32);

    impl Future for CountDown {
        type Output = u32;

        fn poll(mut self: std::pin::Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<u32> {
            if self.0 == 0 {
                Poll::Ready(42)
            } else {
                self.0 -= 1;
                cx.waker().wake_by_ref();
                Poll::Pending
            }
        }
    }

    #[test]
    fn block_on_drives_to_completion() {
        assert_eq!(block_on(CountDown(0)), 42);
        assert_eq!(block_on(CountDown(5)), 42);
    }

    #[test]
    fn block_on_handles_cross_thread_wakes() {
        // A future whose waker is invoked from another thread after a delay:
        // block_on must park, not spin or deadlock.
        struct External {
            fired: Arc<AtomicBool>,
            spawned: bool,
        }
        impl Future for External {
            type Output = &'static str;
            fn poll(
                mut self: std::pin::Pin<&mut Self>,
                cx: &mut Context<'_>,
            ) -> Poll<&'static str> {
                if self.fired.load(Ordering::Acquire) {
                    return Poll::Ready("woken");
                }
                if !self.spawned {
                    self.spawned = true;
                    let fired = self.fired.clone();
                    let waker = cx.waker().clone();
                    std::thread::spawn(move || {
                        std::thread::sleep(std::time::Duration::from_millis(30));
                        fired.store(true, Ordering::Release);
                        waker.wake();
                    });
                }
                Poll::Pending
            }
        }
        let out = block_on(External {
            fired: Arc::new(AtomicBool::new(false)),
            spawned: false,
        });
        assert_eq!(out, "woken");
    }

    #[test]
    fn join_all_preserves_order_and_multiplexes() {
        let outs = block_on(join_all(vec![CountDown(3), CountDown(0), CountDown(7)]));
        assert_eq!(outs, vec![42, 42, 42]);
        let empty: Vec<CountDown> = vec![];
        assert!(block_on(join_all(empty)).is_empty());
    }
}
