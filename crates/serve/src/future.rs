//! The serving futures: one generic [`ServeFuture`] state machine over a
//! [`ServeRequest`], with [`BatchFuture`] / [`AnswerFuture`] /
//! [`StructuredFuture`] as its public faces, plus the shared in-flight
//! [`SelectionTask`] waiters register wakers on.
//!
//! The state machine is deliberately small.  A future is born `Active`
//! (or `Failed` when rejected at submit); each poll either
//!
//! 1. finds the request's [`SelectionPlan`](mm_core::engine::SelectionPlan)
//!    cached and answers immediately through the engine's own paths, or
//! 2. joins (or founds) the one in-flight [`SelectionTask`] for its
//!    fingerprint, registers its waker, and returns `Pending`.
//!
//! Completion of the selection job wakes every registered waiter; the next
//! poll of each lands in case 1.  Answer assembly thus always happens on
//! the polling task with its own seeded RNG — the worker pool only ever
//! runs selections, which is what makes served answers bit-identical to
//! direct engine calls.  Requests whose selection is too cheap to be worth
//! a worker round-trip (the structured path) return no fingerprint and run
//! entirely inline on the first poll.
//!
//! Every future may additionally carry a **deadline** (builder default or a
//! per-future override): an expired request resolves with the typed
//! [`ServeError::DeadlineExceeded`] instead of waiting further, a pending
//! one arms the serving tier's watchdog so the expiry fires even when the
//! selection it waits on never completes, and a queued selection job whose
//! founder's deadline passed is skipped by the worker ([`TaskFailure::Expired`])
//! rather than run stale — live waiters simply re-found the flight.

use crate::{Inner, ServeError};
use mm_core::accounting::UserLedger;
use mm_core::engine::{Engine, EngineAnswer, StructuredAnswer};
use mm_core::MechanismError;
use mm_workload::{Fingerprint, StructuredWorkload, Workload};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::future::Future;
use std::pin::Pin;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex, PoisonError};
use std::task::{Context, Poll, Waker};
use std::time::{Duration, Instant};

/// Why a selection flight resolved without a usable plan.
#[derive(Clone)]
pub(crate) enum TaskFailure {
    /// The selection itself failed (selector error, panic, shutdown);
    /// shared, because one failed selection fails every waiter.
    Mechanism(Arc<MechanismError>),
    /// The founding request's deadline passed before the job ran, so the
    /// worker skipped the (stale) selection.  Not an error for the *other*
    /// waiters: any still-live one re-founds the flight under its own
    /// deadline on the next poll.
    Expired,
}

/// One in-flight selection: waiters register wakers, the worker completes.
pub(crate) struct SelectionTask {
    state: Mutex<TaskState>,
}

enum TaskState {
    Pending(Vec<Waker>),
    Done(Result<(), TaskFailure>),
}

impl SelectionTask {
    pub(crate) fn new() -> Arc<Self> {
        Arc::new(SelectionTask {
            state: Mutex::new(TaskState::Pending(Vec::new())),
        })
    }

    /// Returns the outcome if the selection finished, otherwise registers
    /// the waker (deduplicated via [`Waker::will_wake`]) and returns `None`.
    pub(crate) fn poll_done(&self, waker: &Waker) -> Option<Result<(), TaskFailure>> {
        // Poison recovery: the task state is always written whole (one
        // enum assignment), so a panic elsewhere leaves nothing torn — and
        // panicking here would take every waiter down with the poisoner.
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        match &mut *state {
            TaskState::Done(result) => Some(result.clone()),
            TaskState::Pending(wakers) => {
                if !wakers.iter().any(|w| w.will_wake(waker)) {
                    wakers.push(waker.clone());
                }
                None
            }
        }
    }

    /// Resolves the task and wakes every registered waiter.  Idempotent:
    /// only the first completion sticks (the shutdown path in
    /// `ServeEngine::drop` may race a finishing worker).
    pub(crate) fn complete(&self, result: Result<(), TaskFailure>) {
        let wakers = {
            let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
            match &mut *state {
                TaskState::Done(_) => return,
                TaskState::Pending(wakers) => {
                    let wakers = std::mem::take(wakers);
                    *state = TaskState::Done(result);
                    wakers
                }
            }
        };
        for waker in wakers {
            waker.wake();
        }
    }
}

/// The deferred selection work a founded worker job runs for a request.
pub(crate) type SelectionJob = Box<dyn FnOnce(&Engine) -> mm_core::Result<()> + Send + 'static>;

/// One admitted serving request: what the generic [`ServeFuture`] needs to
/// key, select, and answer it.  Implemented by the dense batch request and
/// the structured request; both front-ends collapse onto the one state
/// machine through this trait.
pub(crate) trait ServeRequest {
    /// What the future resolves to on success.
    type Output;

    /// The plan fingerprint to deduplicate cold selections on, or `None`
    /// when selection is cheap enough to run inline on the polling task
    /// (the structured path) — such requests never touch the worker pool.
    fn fingerprint(&self) -> Option<Fingerprint>;

    /// The selection work a founded worker job runs for this request
    /// (only called when [`ServeRequest::fingerprint`] is `Some`).
    fn selection(&self) -> SelectionJob;

    /// Produces the answer through the engine's own sync paths, so served
    /// semantics (batching, accounting, noise draws) are exactly the direct
    /// ones.
    fn answer(&mut self, inner: &Inner) -> Result<Self::Output, ServeError>;
}

enum FutState {
    /// Rejected at submit; resolves with the stored error on first poll.
    Failed(Option<ServeError>),
    /// Live: probing the cache, waiting on a selection, or ready to answer.
    Active,
    /// Resolved; polling again is a contract violation.
    Finished,
}

/// The one serving state machine: every front-end future wraps this.
pub(crate) struct ServeFuture<R: ServeRequest> {
    inner: Arc<Inner>,
    request: R,
    task: Option<Arc<SelectionTask>>,
    state: FutState,
    /// When set, the request fails with [`ServeError::DeadlineExceeded`]
    /// once `.0` passes; `.1` is the originally configured duration (for
    /// the error message).
    deadline: Option<(Instant, Duration)>,
}

impl<R: ServeRequest> ServeFuture<R> {
    pub(crate) fn new(inner: Arc<Inner>, request: R) -> Self {
        let deadline = inner.default_deadline.map(|d| (Instant::now() + d, d));
        ServeFuture {
            inner,
            request,
            task: None,
            state: FutState::Active,
            deadline,
        }
    }

    /// A future rejected at submit time (NaN gram, no budget headroom).
    pub(crate) fn failed(inner: Arc<Inner>, request: R, error: ServeError) -> Self {
        ServeFuture {
            inner,
            request,
            task: None,
            state: FutState::Failed(Some(error)),
            deadline: None,
        }
    }

    /// Replaces the deadline: the clock starts now, not at submit.
    pub(crate) fn set_deadline(&mut self, after: Duration) {
        self.deadline = Some((Instant::now() + after, after));
    }

    /// Joins the in-flight selection for `fp`, or founds one by enqueueing
    /// a selection job.  Returns the shed error if the queue is full.
    fn join_or_found(&mut self, fp: Fingerprint) -> Result<(), ServeError> {
        let mut pending = self
            .inner
            .pending
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        if let Some(task) = pending.get(&fp.0) {
            self.task = Some(task.clone());
            return Ok(());
        }
        let task = SelectionTask::new();
        let select = self.request.selection();
        // The founder's deadline rides along with the job: a queued
        // selection nobody can still be served by (its founder gave up and
        // every re-join would have re-founded) is skipped, not run stale.
        let expires = self.deadline.map(|(at, _)| at);
        let job: crate::Job = {
            let inner = self.inner.clone();
            let task = task.clone();
            Box::new(move || {
                if expires.is_some_and(|at| Instant::now() >= at) {
                    inner
                        .pending
                        .lock()
                        .unwrap_or_else(PoisonError::into_inner)
                        .remove(&fp.0);
                    inner.jobs_expired.fetch_add(1, Ordering::Relaxed);
                    task.complete(Err(TaskFailure::Expired));
                    return;
                }
                // The engine's own single-flight guard handles concurrent
                // sync callers; catch_unwind converts a panicking selector
                // into a typed poison every waiter can observe.
                let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    select(&inner.engine)
                }));
                inner
                    .pending
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .remove(&fp.0);
                let outcome = match outcome {
                    Ok(Ok(())) => Ok(()),
                    Ok(Err(e)) => Err(TaskFailure::Mechanism(Arc::new(e))),
                    Err(panic) => {
                        let msg = if let Some(s) = panic.downcast_ref::<&str>() {
                            (*s).to_string()
                        } else if let Some(s) = panic.downcast_ref::<String>() {
                            s.clone()
                        } else {
                            "selection worker panicked".to_string()
                        };
                        Err(TaskFailure::Mechanism(Arc::new(
                            MechanismError::PoisonedSelection(msg),
                        )))
                    }
                };
                task.complete(outcome);
            })
        };
        // Enqueue while holding the pending lock: the worker cannot remove
        // the task from `pending` (it needs this lock) before we insert it,
        // so join/found/remove stay linearisable.  Lock order is always
        // pending → queue here and queue-alone then pending-alone in the
        // worker, so there is no cycle.
        if !self.inner.try_enqueue(job) {
            drop(pending);
            self.inner.shed.fetch_add(1, Ordering::Relaxed);
            return Err(ServeError::Overloaded {
                capacity: self.inner.queue_capacity(),
            });
        }
        pending.insert(fp.0, task.clone());
        self.inner.selection_jobs.fetch_add(1, Ordering::Relaxed);
        self.task = Some(task);
        Ok(())
    }
}

impl<R: ServeRequest + Unpin> Future for ServeFuture<R> {
    type Output = Result<R::Output, ServeError>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let this = self.get_mut();
        match std::mem::replace(&mut this.state, FutState::Finished) {
            FutState::Failed(Some(error)) => return Poll::Ready(Err(error)),
            FutState::Failed(None) | FutState::Finished => {
                // mm-lint: allow(serve-panic-freedom): polling a resolved future violates the Future contract — panicking in the caller's task (as std combinators do) beats silently hanging it, and no flight waiter is affected
                panic!("serve future polled after completion")
            }
            FutState::Active => this.state = FutState::Active,
        }
        // Deadline check before any new work: an expired request resolves
        // typed instead of joining (or founding) a flight it cannot use.
        if let Some((at, after)) = this.deadline {
            if Instant::now() >= at {
                this.task = None;
                this.inner.deadline_expired.fetch_add(1, Ordering::Relaxed);
                this.state = FutState::Finished;
                return Poll::Ready(Err(ServeError::DeadlineExceeded {
                    deadline_ms: after.as_millis() as u64,
                }));
            }
        }
        if let Some(fp) = this.request.fingerprint() {
            // A completed selection job clears `task`, so losing a poll race
            // just re-runs the (cheap) cache probe.  The probe is plan-kind
            // agnostic: a cached low-rank plan is as warm as a dense one.
            loop {
                if this.task.is_none() && this.inner.engine.cached_plan(fp).is_none() {
                    if let Err(shed) = this.join_or_found(fp) {
                        this.state = FutState::Finished;
                        return Poll::Ready(Err(shed));
                    }
                }
                match &this.task {
                    None => break,
                    Some(task) => match task.poll_done(cx.waker()) {
                        None => {
                            // Waiting on the flight: also arm the watchdog,
                            // so an expired deadline wakes this task even if
                            // the selection never completes.
                            if let Some((at, _)) = this.deadline {
                                this.inner.register_timer(at, cx.waker().clone());
                            }
                            return Poll::Pending;
                        }
                        Some(Err(TaskFailure::Expired)) => {
                            // The *founder's* deadline killed the job; this
                            // waiter re-probes and re-founds under its own
                            // clock — unless that clock ran out meanwhile.
                            this.task = None;
                            if let Some((at, after)) = this.deadline {
                                if Instant::now() >= at {
                                    this.inner.deadline_expired.fetch_add(1, Ordering::Relaxed);
                                    this.state = FutState::Finished;
                                    return Poll::Ready(Err(ServeError::DeadlineExceeded {
                                        deadline_ms: after.as_millis() as u64,
                                    }));
                                }
                            }
                        }
                        Some(Err(TaskFailure::Mechanism(error))) => {
                            this.task = None;
                            this.inner.failed.fetch_add(1, Ordering::Relaxed);
                            this.state = FutState::Finished;
                            return Poll::Ready(Err(ServeError::Mechanism(error)));
                        }
                        Some(Ok(())) => {
                            this.task = None;
                            break;
                        }
                    },
                }
            }
        }
        let result = this.request.answer(&this.inner);
        match &result {
            Ok(_) => this.inner.completed.fetch_add(1, Ordering::Relaxed),
            Err(_) => this.inner.failed.fetch_add(1, Ordering::Relaxed),
        };
        this.state = FutState::Finished;
        Poll::Ready(result)
    }
}

/// The dense (batch) request: keyed by the engine's plan fingerprint, cold
/// selections run on the worker pool.
pub(crate) struct BatchRequest<W: Workload + Send + Sync + ?Sized + 'static> {
    workload: Arc<W>,
    xs: Vec<Vec<f64>>,
    seed: u64,
    ledger: Option<UserLedger>,
    fp: Fingerprint,
}

impl<W: Workload + Send + Sync + ?Sized + 'static> ServeRequest for BatchRequest<W> {
    type Output = Vec<EngineAnswer>;

    fn fingerprint(&self) -> Option<Fingerprint> {
        Some(self.fp)
    }

    fn selection(&self) -> SelectionJob {
        let workload = self.workload.clone();
        // select_plan_for warms whichever plan kind the engine is
        // configured for (dense or low-rank) under the same fingerprint the
        // answer path will look up.
        Box::new(move |engine| engine.select_plan_for(&*workload).map(|_| ()))
    }

    /// The selection is warm (or this is the retry after a completed job):
    /// produce the answers through the engine's own batch path, so batching
    /// semantics, accounting, and noise draws are exactly the sync ones.
    fn answer(&mut self, inner: &Inner) -> Result<Vec<EngineAnswer>, ServeError> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let xs = std::mem::take(&mut self.xs);
        let result = match &self.ledger {
            Some(ledger) => {
                let mut session = inner.engine.user_session(ledger);
                session.answer_batch(&*self.workload, &xs, &mut rng)
            }
            None => inner.engine.answer_batch(&*self.workload, &xs, &mut rng),
        };
        result.map_err(ServeError::from)
    }
}

/// The structured (matrix-free) request: selection is O(n log n), so the
/// whole request runs inline on the polling task — no fingerprint, no
/// worker job.
pub(crate) struct StructuredRequest<W: StructuredWorkload + Send + Sync + ?Sized + 'static> {
    workload: Arc<W>,
    x: Vec<f64>,
    seed: u64,
    ledger: Option<UserLedger>,
}

impl<W: StructuredWorkload + Send + Sync + ?Sized + 'static> ServeRequest for StructuredRequest<W> {
    type Output = StructuredAnswer;

    fn fingerprint(&self) -> Option<Fingerprint> {
        None
    }

    fn selection(&self) -> SelectionJob {
        // Never founded: fingerprint() is None, so the future answers inline.
        Box::new(|_| Ok(()))
    }

    fn answer(&mut self, inner: &Inner) -> Result<StructuredAnswer, ServeError> {
        // Same seeding discipline as the dense path: the noise draw is a
        // pure function of the submitted seed, so served answers replay.
        let mut rng = StdRng::seed_from_u64(self.seed);
        let result = match &self.ledger {
            Some(ledger) => {
                let mut session = inner.engine.user_session(ledger);
                session.answer_structured(&*self.workload, &self.x, &mut rng)
            }
            None => inner
                .engine
                .answer_structured(&*self.workload, &self.x, &mut rng),
        };
        result.map_err(ServeError::from)
    }
}

/// Future of a batched request: resolves to one [`EngineAnswer`] per
/// submitted data vector, or a [`ServeError`].
///
/// Created by [`crate::ServeEngine::answer_batch`] /
/// [`crate::ServeEngine::answer_batch_for`].  `Unpin` by construction, so
/// it composes with [`crate::join_all`] without pinning ceremony.
pub struct BatchFuture<W: Workload + Send + Sync + ?Sized + 'static> {
    fut: ServeFuture<BatchRequest<W>>,
}

impl<W: Workload + Send + Sync + ?Sized + 'static> std::fmt::Debug for BatchFuture<W> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BatchFuture")
            .field("fp", &self.fut.request.fp)
            .field("batch", &self.fut.request.xs.len())
            .finish_non_exhaustive()
    }
}

impl<W: Workload + Send + Sync + ?Sized + 'static> BatchFuture<W> {
    pub(crate) fn new(
        inner: Arc<Inner>,
        workload: Arc<W>,
        xs: Vec<Vec<f64>>,
        seed: u64,
        ledger: Option<UserLedger>,
        fp: Fingerprint,
    ) -> Self {
        BatchFuture {
            fut: ServeFuture::new(
                inner,
                BatchRequest {
                    workload,
                    xs,
                    seed,
                    ledger,
                    fp,
                },
            ),
        }
    }

    /// A future rejected at submit time (NaN gram, no budget headroom).
    pub(crate) fn failed(inner: Arc<Inner>, workload: Arc<W>, error: ServeError) -> Self {
        BatchFuture {
            fut: ServeFuture::failed(
                inner,
                BatchRequest {
                    workload,
                    xs: Vec::new(),
                    seed: 0,
                    ledger: None,
                    fp: Fingerprint(0),
                },
                error,
            ),
        }
    }

    /// Fails the request with [`ServeError::DeadlineExceeded`] unless it
    /// resolves within `after` of this call, overriding the serving tier's
    /// default deadline (see
    /// [`crate::ServeEngineBuilder::default_deadline`]).  Queued selection
    /// jobs whose founder's deadline has passed are skipped, not run stale.
    pub fn deadline(mut self, after: Duration) -> Self {
        self.fut.set_deadline(after);
        self
    }
}

impl<W: Workload + Send + Sync + ?Sized + 'static> Future for BatchFuture<W> {
    type Output = Result<Vec<EngineAnswer>, ServeError>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        Pin::new(&mut self.get_mut().fut).poll(cx)
    }
}

/// Future of a structured (matrix-free) request: resolves to one
/// [`StructuredAnswer`] or a [`ServeError`].  Created by
/// [`crate::ServeEngine::answer_structured`] /
/// [`crate::ServeEngine::answer_structured_for`].
///
/// Unlike [`BatchFuture`], this future never touches the worker pool:
/// structured selection is O(n log n) (microseconds even at n = 65 536, no
/// eigendecomposition), so the whole request — cache probe, selection,
/// noisy observations, conjugate-gradient reconstruction — runs inline on
/// the first poll.  Answers are bit-identical to a direct
/// `engine.answer_structured` with a `StdRng` seeded the same way.
pub struct StructuredFuture<W: StructuredWorkload + Send + Sync + ?Sized + 'static> {
    fut: ServeFuture<StructuredRequest<W>>,
}

impl<W: StructuredWorkload + Send + Sync + ?Sized + 'static> std::fmt::Debug
    for StructuredFuture<W>
{
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StructuredFuture")
            .field("n", &self.fut.request.x.len())
            .finish_non_exhaustive()
    }
}

impl<W: StructuredWorkload + Send + Sync + ?Sized + 'static> StructuredFuture<W> {
    pub(crate) fn new(
        inner: Arc<Inner>,
        workload: Arc<W>,
        x: Vec<f64>,
        seed: u64,
        ledger: Option<UserLedger>,
    ) -> Self {
        StructuredFuture {
            fut: ServeFuture::new(
                inner,
                StructuredRequest {
                    workload,
                    x,
                    seed,
                    ledger,
                },
            ),
        }
    }

    /// A future rejected at submit time (no budget headroom).
    pub(crate) fn failed(inner: Arc<Inner>, workload: Arc<W>, error: ServeError) -> Self {
        StructuredFuture {
            fut: ServeFuture::failed(
                inner,
                StructuredRequest {
                    workload,
                    x: Vec::new(),
                    seed: 0,
                    ledger: None,
                },
                error,
            ),
        }
    }

    /// Fails the request with [`ServeError::DeadlineExceeded`] unless it
    /// resolves within `after` of this call (override of the builder
    /// default).  The structured path runs inline on the first poll, so the
    /// deadline only bites when that poll itself starts too late.
    pub fn deadline(mut self, after: Duration) -> Self {
        self.fut.set_deadline(after);
        self
    }
}

impl<W: StructuredWorkload + Send + Sync + ?Sized + 'static> Future for StructuredFuture<W> {
    type Output = Result<StructuredAnswer, ServeError>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        Pin::new(&mut self.get_mut().fut).poll(cx)
    }
}

/// Future of a single-vector request: resolves to one [`EngineAnswer`] or a
/// [`ServeError`].  Created by [`crate::ServeEngine::answer`] /
/// [`crate::ServeEngine::answer_for`].
pub struct AnswerFuture<W: Workload + Send + Sync + ?Sized + 'static> {
    batch: BatchFuture<W>,
}

impl<W: Workload + Send + Sync + ?Sized + 'static> std::fmt::Debug for AnswerFuture<W> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AnswerFuture")
            .field("batch", &self.batch)
            .finish()
    }
}

impl<W: Workload + Send + Sync + ?Sized + 'static> AnswerFuture<W> {
    pub(crate) fn new(batch: BatchFuture<W>) -> Self {
        AnswerFuture { batch }
    }

    /// Fails the request with [`ServeError::DeadlineExceeded`] unless it
    /// resolves within `after` of this call (override of the builder
    /// default; see [`BatchFuture::deadline`]).
    pub fn deadline(mut self, after: Duration) -> Self {
        self.batch = self.batch.deadline(after);
        self
    }
}

impl<W: Workload + Send + Sync + ?Sized + 'static> Future for AnswerFuture<W> {
    type Output = Result<EngineAnswer, ServeError>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        match Pin::new(&mut self.get_mut().batch).poll(cx) {
            Poll::Pending => Poll::Pending,
            Poll::Ready(Err(e)) => Poll::Ready(Err(e)),
            Poll::Ready(Ok(mut answers)) => Poll::Ready(match answers.pop() {
                Some(answer) => Ok(answer),
                // One submitted vector always yields one answer; if the
                // engine ever broke that, surface it as a typed error
                // rather than panicking the polling task.
                None => Err(ServeError::Mechanism(Arc::new(
                    MechanismError::InvalidArgument(
                        "engine returned no answer for a one-vector batch".into(),
                    ),
                ))),
            }),
        }
    }
}
