//! Privacy accounting: how many answers one total (ε, δ) budget buys under
//! sequential composition, advanced (strong) composition, and Rényi-DP
//! accounting — at the paper's per-answer setting ε = 0.5, δ = 10⁻⁴.
//!
//! The mechanism (and therefore the per-answer noise and accuracy) is
//! identical in every run; only the composition theorem the session's
//! ledger applies changes.  That is the whole point of tight accounting:
//! more answers at the *same* noise scale and the same total budget.
//!
//! Run with: `cargo run --release --example accounting`

use adaptive_dp::core::accounting::{
    AccountantFactory, AdvancedCompositionAccountant, AdvancedCompositionAccounting,
    MechanismEvent, RdpAccounting, SequentialAccountant, SequentialAccounting,
};
use adaptive_dp::core::engine::{Engine, PrivacyBudget};
use adaptive_dp::core::{Accountant, MechanismError, PrivacyParams};
use adaptive_dp::workload::range::AllRangeWorkload;
use adaptive_dp::workload::Domain;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Answers the workload through a fresh session until the budget runs out,
/// returning how many answers the accountant admitted.
fn answers_per_budget(
    engine: &Engine,
    factory: &dyn AccountantFactory,
    budget: PrivacyBudget,
    workload: &AllRangeWorkload,
    counts: &[f64],
) -> (usize, PrivacyBudget) {
    let mut session = engine.session_with_accountant(factory.accountant(budget));
    let mut rng = StdRng::seed_from_u64(42);
    let mut answered = 0usize;
    loop {
        match session.answer(workload, counts, &mut rng) {
            Ok(_) => answered += 1,
            Err(MechanismError::BudgetExhausted { .. }) => break,
            Err(other) => panic!("unexpected error: {other}"),
        }
        if answered >= 100_000 {
            break; // safety valve; never reached at these budgets
        }
    }
    (answered, session.ledger().spent())
}

fn main() {
    // The paper's per-answer privacy setting (Prop. 2/4) and a serving
    // budget of (ε = 4, δ = 10⁻³) for the whole session.
    let per_answer = PrivacyParams::paper_default(); // (0.5, 1e-4)
    let budget = PrivacyBudget::new(4.0, 1e-3);

    let domain = Domain::one_dim(32);
    let workload = AllRangeWorkload::new(domain);
    let counts: Vec<f64> = (0..32)
        .map(|i| 300.0 * (-((i as f64 - 16.0) / 6.0).powi(2)).exp() + 10.0)
        .map(f64::round)
        .collect();

    let engine = Engine::builder().privacy(per_answer).build().unwrap();
    println!(
        "per-answer privacy: (ε = {}, δ = {}), Gaussian σ (unit sensitivity) = {:.3}",
        per_answer.epsilon,
        per_answer.delta,
        per_answer.gaussian_unit_sigma()
    );
    println!(
        "total session budget: (ε = {}, δ = {})\n",
        budget.epsilon, budget.delta
    );

    let factories: [Box<dyn AccountantFactory>; 3] = [
        Box::new(SequentialAccounting),
        Box::new(AdvancedCompositionAccounting),
        Box::new(RdpAccounting::default()),
    ];
    println!(
        "{:<12} {:>8}   composed spend at the budget's δ",
        "accountant", "answers"
    );
    let mut per_policy = Vec::new();
    for factory in &factories {
        let (answered, spent) =
            answers_per_budget(&engine, factory.as_ref(), budget, &workload, &counts);
        println!(
            "{:<12} {:>8}   (ε = {:.3}, δ = {:.1e})",
            factory.name(),
            answered,
            spent.epsilon,
            spent.delta
        );
        per_policy.push((factory.name(), answered));
    }

    let sequential = per_policy[0].1;
    let rdp = per_policy[2].1;
    println!(
        "\nRDP accounting serves {rdp} answers where sequential composition \
         serves {sequential} — a {:.1}x budget stretch at identical per-answer \
         noise (k Gaussian releases cost O(√k) in ε, not O(k)).",
        rdp as f64 / sequential.max(1) as f64
    );
    println!(
        "Advanced composition pays only when the per-answer ε is small: at \
         ε = 0.5 its √k bound is looser than the plain sum (its min() falls \
         back to sequential in ε) and its reserved δ′ slack halves the δ \
         capacity, so it serves no more — here fewer — answers."
    );

    // The regime where advanced composition does win: many cheap answers.
    let small = PrivacyParams::new(0.01, 0.0);
    let event = MechanismEvent::declared(small);
    let mut adv = AdvancedCompositionAccountant::new(budget);
    let mut seq = SequentialAccountant::new(budget);
    let mut adv_count = 0usize;
    while adv.charge_many(&event, 1).is_ok() {
        adv_count += 1;
    }
    let mut seq_count = 0usize;
    while seq.charge_many(&event, 1).is_ok() {
        seq_count += 1;
    }
    println!(
        "\nAt a small per-release ε = {} (δ = 0), the same (ε = {}, δ = {}) \
         budget admits {} releases under advanced composition vs {} under \
         sequential — the √k advantage in its natural regime.",
        small.epsilon, budget.epsilon, budget.delta, adv_count, seq_count
    );
}
