//! Matrix-free answering at n = 65 536 — far past where the dense engine
//! path can materialise a workload gram or run an eigensolve.
//!
//! The structured path keeps everything as operators: the workload is a list
//! of intervals, the Haar strategy a list of run-length rows, and the
//! estimate comes from CG on the normal equations.  Peak memory stays O(n),
//! and the whole request — selection, noisy observation, reconstruction,
//! evaluation of all 65 536 prefix queries — takes well under a second.
//!
//! Run with: `cargo run --release --example large_domain`

use adaptive_dp::core::engine::Engine;
use adaptive_dp::core::PrivacyParams;
use adaptive_dp::workload::RangeQueryWorkload;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

fn main() {
    let n = 65_536;
    // Every prefix query over the domain, held as intervals — never a matrix.
    let workload = RangeQueryWorkload::prefixes(n);
    let engine = Engine::builder()
        .privacy(PrivacyParams::paper_default())
        .build()
        .expect("default engine builds");

    // Deterministic synthetic histogram.
    let x: Vec<f64> = (0..n)
        .map(|i| 50.0 + ((i * 13) % 97) as f64 * 3.0)
        .collect();

    let mut rng = StdRng::seed_from_u64(65_536);
    let start = Instant::now();
    let answer = engine
        .answer_structured(&workload, &x, &mut rng)
        .expect("structured answering succeeds");
    let elapsed = start.elapsed();

    // Ground truth in one prefix-sum pass; measured error against the
    // closed-form prediction from the strategy's trace term.
    let mut truth = Vec::with_capacity(n);
    let mut acc = 0.0;
    for &v in &x {
        acc += v;
        truth.push(acc);
    }
    let total_sq: f64 = answer
        .answers
        .iter()
        .zip(truth.iter())
        .map(|(a, t)| (a - t) * (a - t))
        .sum();
    let rms = (total_sq / n as f64).sqrt();

    println!(
        "domain: {n} cells, workload: {} prefix queries",
        workload.intervals().len()
    );
    println!(
        "strategy: {} ({} rows, fingerprint {}, {})",
        answer.strategy.name(),
        answer.strategy.rows(),
        answer.fingerprint,
        if answer.cache_hit {
            "cache hit"
        } else {
            "cold selection"
        },
    );
    println!("answered in {elapsed:.2?}");
    println!("measured rms error:  {rms:.2}");
    if let Some(expected) = answer.expected_rms_error {
        println!("predicted rms error: {expected:.2} (closed-form trace)");
    }

    // A second request hits the in-memory selection cache: only the noise
    // draw, the CG solve, and the interval evaluation remain.
    let start = Instant::now();
    let again = engine
        .answer_structured(&workload, &x, &mut rng)
        .expect("structured answering succeeds");
    println!(
        "re-answered in {:.2?} (cache hit: {})",
        start.elapsed(),
        again.cache_hit
    );
}
