//! A server that survives restarts: two sequential engine "processes"
//! sharing one strategy-store directory.
//!
//! Strategy selection is data independent (Sec. 1 of the paper) and
//! expensive (an O(n³) eigendecomposition on the cache-miss path), which
//! makes the selected strategy the perfect thing to persist: the first
//! server instance spills every selection it computes to disk, and the next
//! instance warms its cache from the directory at build time — restarting
//! costs a file decode and a `Cholesky` rebuild instead of an eigensolve,
//! and the answers are bit-identical either way.
//!
//! The instances here also serve a shared principal whose `UserLedger`
//! outlives neither process (budgets are in-memory; persistence is for the
//! *data-independent* artifact only), and answer through the async
//! `ServeEngine` front-end to show the full serving stack end to end.
//!
//! Run with: `cargo run --release --example persistent_server`

use adaptive_dp::core::accounting::UserLedger;
use adaptive_dp::core::engine::{Engine, PrivacyBudget};
use adaptive_dp::core::PrivacyParams;
use adaptive_dp::serve::{block_on, join_all, ServeEngine};
use adaptive_dp::workload::range::AllRangeWorkload;
use adaptive_dp::workload::Domain;
use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

/// One server "process": build an engine over the shared store directory,
/// serve every workload once through the async tier, report timings and
/// cache provenance.
fn run_instance(tag: &str, dir: &Path, workloads: &[Arc<AllRangeWorkload>]) -> Vec<Vec<f64>> {
    let built_at = Instant::now();
    let engine = Arc::new(
        Engine::builder()
            .privacy(PrivacyParams::paper_default())
            .strategy_store(dir)
            .build()
            .expect("engine with store builds"),
    );
    let build_ms = built_at.elapsed().as_secs_f64() * 1e3;

    let serve = ServeEngine::builder(engine.clone()).workers(2).build();
    let ledger = UserLedger::new("analyst", PrivacyBudget::new(16.0, 0.1));

    let served_at = Instant::now();
    let futures: Vec<_> = workloads
        .iter()
        .enumerate()
        .map(|(i, w)| {
            let n = w.domain().n_cells();
            let x: Vec<f64> = (0..n).map(|c| 200.0 + (c % 29) as f64).collect();
            serve.answer_for(&ledger, w.clone(), x, i as u64)
        })
        .collect();
    let answers: Vec<Vec<f64>> = block_on(join_all(futures))
        .into_iter()
        .map(|r| r.expect("served answer").answers)
        .collect();
    let serve_ms = served_at.elapsed().as_secs_f64() * 1e3;

    let stats = engine.stats();
    println!(
        "[{tag}] build {build_ms:8.1} ms | serve {serve_ms:8.1} ms | \
         selections {} | cache hits {} | store writes {} | ε spent {:.2}",
        stats.selections,
        stats.cache_hits,
        stats.store_writes,
        ledger.spent().epsilon,
    );
    answers
}

fn main() {
    let dir = std::env::temp_dir().join(format!("mm-persistent-server-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // Three ordered domains an analyst might page through; each has its own
    // fingerprint and therefore its own persisted selection.
    let workloads: Vec<Arc<AllRangeWorkload>> = [192usize, 256, 320]
        .into_iter()
        .map(|n| Arc::new(AllRangeWorkload::new(Domain::one_dim(n))))
        .collect();

    println!("store directory: {}", dir.display());
    let first = run_instance("cold instance", &dir, &workloads);
    let second = run_instance("warm instance", &dir, &workloads);

    let identical = first
        .iter()
        .zip(&second)
        .all(|(a, b)| a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits()));
    println!("persisted selections reproduced the cold answers bit-identically: {identical}");
    assert!(identical, "store round-trip must be bit-identical");

    let files = std::fs::read_dir(&dir)
        .map(|d| d.flatten().count())
        .unwrap_or(0);
    println!("store now holds {files} persisted selections");
    let _ = std::fs::remove_dir_all(&dir);
}
