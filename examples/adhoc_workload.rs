//! Ad hoc workloads: combining the queries of several analysts.
//!
//! The paper motivates the adaptive mechanism with workloads that do not fit
//! any prior technique: unions of range queries, marginals and hand-written
//! predicate queries, possibly over a permuted (non-ordered) representation of
//! the cells.  This example builds such a workload, shows that the
//! Eigen-Design strategy adapts to it while fixed strategies do not, and
//! answers it privately through the engine.
//!
//! Run with: `cargo run --release --example adhoc_workload`

use adaptive_dp::core::bounds::{rms_error_bound, workload_eigenvalues};
use adaptive_dp::core::engine::Engine;
use adaptive_dp::core::error::rms_workload_error;
use adaptive_dp::core::PrivacyParams;
use adaptive_dp::strategies::hierarchical::binary_hierarchical_1d;
use adaptive_dp::strategies::identity::identity_strategy;
use adaptive_dp::strategies::wavelet::wavelet_1d;
use adaptive_dp::workload::predicate::RandomPredicateWorkload;
use adaptive_dp::workload::prefix::PrefixWorkload;
use adaptive_dp::workload::range::RandomRangeWorkload;
use adaptive_dp::workload::transform::{seeded_permutation, PermutedWorkload};
use adaptive_dp::workload::union::UnionWorkload;
use adaptive_dp::workload::{Domain, Workload};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let n = 128;
    let domain = Domain::one_dim(n);
    let mut rng = StdRng::seed_from_u64(11);

    // Analyst 1: 200 random range queries.  Analyst 2: the CDF.  Analyst 3:
    // 100 arbitrary predicate queries.
    let ranges = RandomRangeWorkload::sample(domain.clone(), 200, &mut rng);
    let cdf = PrefixWorkload::new(n);
    let predicates = RandomPredicateWorkload::sample(n, 100, &mut rng);
    let combined = UnionWorkload::new(
        "three analysts",
        vec![Box::new(ranges), Box::new(cdf), Box::new(predicates)],
    );
    // The cells arrive in no particular order (e.g. a categorical attribute),
    // modelled by a random permutation of the cell conditions.
    let workload = PermutedWorkload::new(combined, seeded_permutation(n, 5));
    println!(
        "workload: {} ({} queries)",
        workload.description(),
        workload.query_count()
    );

    let privacy = PrivacyParams::new(0.5, 1e-4);
    let engine = Engine::builder().privacy(privacy).build().unwrap();
    // Selection is explicit here to compare strategies analytically; the
    // result lands in the engine's cache, so `answer` below reuses it.
    let (eigen, _, _) = engine.select(&workload).unwrap();

    let gram = workload.gram();
    let m = workload.query_count();
    let bound = rms_error_bound(&workload_eigenvalues(&gram).unwrap(), m, &privacy);
    println!("\nanalytic RMS workload error:");
    for (name, strategy) in [
        ("identity", &identity_strategy(n)),
        ("wavelet", &wavelet_1d(n)),
        ("hierarchical", &binary_hierarchical_1d(n)),
        ("eigen design", eigen.as_ref()),
    ] {
        let err = rms_workload_error(&gram, m, strategy, &privacy).unwrap();
        println!(
            "  {name:12} {err:9.3}   ({:.3}x the lower bound)",
            err / bound
        );
    }

    // Answer privately on a synthetic histogram (cache hit: selection already
    // happened above).
    let counts: Vec<f64> = (0..n).map(|i| ((i * 37) % 97) as f64 + 5.0).collect();
    let result = engine.answer(&workload, &counts, &mut rng).unwrap();
    assert!(result.cache_hit);
    let truth = workload.evaluate(&counts);
    let mse: f64 = truth
        .iter()
        .zip(result.answers.iter())
        .map(|(t, a)| (t - a).powi(2))
        .sum::<f64>()
        / truth.len() as f64;
    println!(
        "\nran the mechanism once: observed RMS error {:.2} (predicted {:.2})",
        mse.sqrt(),
        result.expected_rms_error
    );
}
