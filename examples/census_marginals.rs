//! Publishing low-order marginals of a census-like dataset.
//!
//! This mirrors the paper's marginal experiments (Fig. 3(c)/(d)): a data
//! analyst wants all 1-way and 2-way marginals of an age × occupation × income
//! histogram.  The example compares the adaptive strategy against the Fourier
//! and DataCube baselines, both analytically and on actual noisy data, and
//! publishes the marginals through a budgeted engine session.
//!
//! Run with: `cargo run --release --example census_marginals`

use adaptive_dp::core::bounds::{rms_error_bound, workload_eigenvalues};
use adaptive_dp::core::engine::{Engine, PrivacyBudget};
use adaptive_dp::core::error::rms_workload_error;
use adaptive_dp::core::PrivacyParams;
use adaptive_dp::data::relative_error::{average_relative_error, RelativeErrorOptions};
use adaptive_dp::data::synthetic::synthetic_histogram;
use adaptive_dp::strategies::datacube::datacube_strategy;
use adaptive_dp::strategies::fourier::fourier_strategy;
use adaptive_dp::workload::marginal::{MarginalKind, MarginalWorkload};
use adaptive_dp::workload::{Domain, Workload};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // A reduced census-like domain keeps the example fast; swap in
    // `Domain::new(&[8, 16, 16])` for the paper's full 2048-cell domain.
    let domain = Domain::new(&[8, 8, 8]);
    let data = synthetic_histogram(&domain, 1_500_000.0, 1.1, 4, 42);
    println!(
        "census-like histogram over {domain}: {} tuples, {:.0}% empty cells",
        data.total(),
        100.0 * data.sparsity()
    );

    // Workload: all marginals of order <= 2 (sufficient statistics for many
    // contingency-table analyses).
    let workload = MarginalWorkload::up_to_k_way(domain.clone(), 2, MarginalKind::Point);
    println!("workload: {}", workload.description());

    let privacy = PrivacyParams::new(0.5, 1e-4);
    let engine = Engine::builder().privacy(privacy).build().unwrap();

    // Analytic comparison (data independent).
    let gram = workload.gram();
    let m = workload.query_count();
    let fourier = fourier_strategy(&workload);
    let datacube = datacube_strategy(&workload);
    let (selection, _, _) = engine.select(&workload).expect("strategy selection");
    let bound = rms_error_bound(&workload_eigenvalues(&gram).unwrap(), m, &privacy);
    println!("\nanalytic RMS workload error (Prop. 4):");
    for (name, strategy) in [
        ("fourier", &fourier),
        ("datacube", &datacube),
        ("eigen design", selection.as_ref()),
    ] {
        let err = rms_workload_error(&gram, m, strategy, &privacy).unwrap();
        println!(
            "  {name:12} {err:8.3}   ({:.3}x the lower bound)",
            err / bound
        );
    }

    // Relative error on the actual histogram (normalised workload drives the
    // strategy selection, per Sec. 3.4).
    let normalized =
        MarginalWorkload::up_to_k_way(domain, 2, MarginalKind::Point).into_normalized();
    let (rel_strategy, _, _) = engine.select(&normalized).unwrap();
    let opts = RelativeErrorOptions {
        trials: 3,
        floor: 1.0,
        seed: 1,
    };
    println!("\naverage relative error on the census-like data (3 trials):");
    for (name, strategy) in [
        ("fourier", &fourier),
        ("datacube", &datacube),
        ("eigen design", rel_strategy.as_ref()),
    ] {
        let rep = average_relative_error(&workload, strategy, &data, &privacy, &opts).unwrap();
        println!(
            "  {name:12} mean {:>8.5}  median {:>8.5}",
            rep.mean, rep.median
        );
    }

    // Finally, actually publish the marginals once, through a budgeted
    // session (sequential composition is accounted per answer call).
    let mut rng = StdRng::seed_from_u64(3);
    let mut session = engine.session(PrivacyBudget::new(1.0, 1e-3));
    let run = session.answer(&workload, data.counts(), &mut rng).unwrap();
    let truth = workload.evaluate(data.counts());
    println!(
        "\npublished {} marginal counts; first five (true -> private):",
        run.answers.len()
    );
    for (t, a) in truth.iter().zip(run.answers.iter()).take(5) {
        println!("  {t:10.0} -> {a:10.1}");
    }
    let remaining = session.remaining();
    println!(
        "session budget remaining: ε = {:.2}, δ = {:.0e}",
        remaining.epsilon, remaining.delta
    );
}
