//! Quickstart: answer a workload of range queries under (ε,δ)-differential
//! privacy with the serving `Engine` (Eigen-Design selection + the Gaussian
//! matrix mechanism).
//!
//! Run with: `cargo run --release --example quickstart`

use adaptive_dp::core::engine::Engine;
use adaptive_dp::core::error::rms_workload_error;
use adaptive_dp::core::PrivacyParams;
use adaptive_dp::strategies::identity::identity_strategy;
use adaptive_dp::workload::range::AllRangeWorkload;
use adaptive_dp::workload::{Domain, Workload};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // A one-dimensional ordered domain with 64 buckets (say, ages 0-63) and a
    // workload asking for *every* range count over it: 64*65/2 = 2080 queries.
    let domain = Domain::one_dim(64);
    let workload = AllRangeWorkload::new(domain.clone());
    println!("workload: {}", workload.description());

    // A toy histogram: a bump of counts in the middle of the domain.
    let counts: Vec<f64> = (0..64)
        .map(|i| 500.0 * (-((i as f64 - 32.0) / 12.0).powi(2)).exp() + 20.0)
        .map(f64::round)
        .collect();
    let total: f64 = counts.iter().sum();
    println!(
        "database: {total} individuals across {} cells",
        counts.len()
    );

    // The engine: pluggable strategy selection + the matrix mechanism behind
    // one `answer` call, with selected strategies cached per workload.
    let privacy = PrivacyParams::new(0.5, 1e-4);
    let engine = Engine::builder().privacy(privacy).build().unwrap();
    let mut rng = StdRng::seed_from_u64(7);
    let result = engine
        .answer(&workload, &counts, &mut rng)
        .expect("mechanism run succeeds");

    println!(
        "selected strategy: {} ({} strategy queries, sensitivity {:.3})",
        result.strategy.name(),
        result.strategy.rows(),
        result.strategy.l2_sensitivity()
    );
    println!(
        "predicted RMS error (Prop. 4): {:.2}",
        result.expected_rms_error
    );

    // Compare against the naive identity strategy (noisy counts per cell).
    let naive = rms_workload_error(
        &workload.gram(),
        workload.query_count(),
        &identity_strategy(64),
        &privacy,
    )
    .unwrap();
    println!(
        "identity-strategy RMS error would be {:.2} ({:.2}x worse)",
        naive,
        naive / result.expected_rms_error
    );

    // Show a few answers next to the truth.
    let truth = workload.evaluate(&counts);
    println!("\nsample answers (query, true, private):");
    for idx in [0usize, 100, 1000, 2000] {
        println!(
            "  query {idx:4}: true = {:8.1}, private = {:8.1}",
            truth[idx], result.answers[idx]
        );
    }
    // The answers are consistent: they all derive from one estimate x̂.
    let est_total: f64 = result.estimate.iter().sum();
    println!("\nestimated total count: {est_total:.1} (true {total})");

    // Strategy selection is data independent, so answering a *new* database
    // under the same workload reuses the cached strategy: no selection work.
    let other_counts: Vec<f64> = counts.iter().rev().copied().collect();
    let again = engine.answer(&workload, &other_counts, &mut rng).unwrap();
    assert!(again.cache_hit);
    println!(
        "\nanswered a second database with the cached strategy \
         (cache hits so far: {})",
        engine.stats().cache_hits
    );
}
