//! Range-query analysis over an ordered domain, including the relative-error
//! workflow of Sec. 3.4 (select the strategy on the unit-norm scaled workload,
//! answer the original queries).
//!
//! Run with: `cargo run --release --example range_analysis`

use adaptive_dp::core::engine::Engine;
use adaptive_dp::core::PrivacyParams;
use adaptive_dp::data::relative_error::{average_relative_error, RelativeErrorOptions};
use adaptive_dp::data::synthetic::synthetic_histogram;
use adaptive_dp::strategies::hierarchical::binary_hierarchical;
use adaptive_dp::strategies::wavelet::wavelet_strategy;
use adaptive_dp::workload::range::AllRangeWorkload;
use adaptive_dp::workload::{Domain, Workload};

fn main() {
    // Two-dimensional ordered domain: 32 age buckets x 16 income buckets.
    let domain = Domain::new(&[32, 16]);
    let data = synthetic_histogram(&domain, 400_000.0, 1.05, 3, 2024);
    println!(
        "histogram over {domain}: {} tuples across {} cells",
        data.total(),
        data.n_cells()
    );

    // Workload: every axis-aligned rectangular range count (~ 72k queries) —
    // never materialised as a matrix.
    let workload = AllRangeWorkload::new(domain.clone());
    println!("workload: {} queries", workload.query_count());

    let privacy = PrivacyParams::new(1.0, 1e-4);
    let engine = Engine::builder().privacy(privacy).build().unwrap();

    // Relative-error objective: select on the normalised workload.  The
    // engine caches the selection under the normalised workload's
    // fingerprint, so re-serving it later costs nothing.
    let normalized = AllRangeWorkload::normalized(domain.clone());
    let (eigen, _, _) = engine.select(&normalized).unwrap();
    let wavelet = wavelet_strategy(&domain);
    let hierarchical = binary_hierarchical(&domain);

    let opts = RelativeErrorOptions {
        trials: 3,
        floor: 1.0,
        seed: 9,
    };
    println!(
        "\naverage relative error over all {} range queries:",
        workload.query_count()
    );
    for (name, strategy) in [
        ("hierarchical", &hierarchical),
        ("wavelet", &wavelet),
        ("eigen design", eigen.as_ref()),
    ] {
        let rep = average_relative_error(&workload, strategy, &data, &privacy, &opts).unwrap();
        println!(
            "  {name:12} mean {:>9.5}   median {:>9.5}   ({} trials, {} queries)",
            rep.mean, rep.median, rep.trials, rep.queries
        );
    }
    println!(
        "\nThe adaptive strategy is selected once per workload; rerunning on a new\n\
         database reuses it from the engine's cache at no extra optimization cost."
    );
}
