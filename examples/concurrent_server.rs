//! A miniature concurrent query server: one shared `Engine`, one owned
//! budgeted session per "connection" thread, and batched answering for a
//! fleet of databases under one workload.
//!
//! Demonstrates the serving-layer features:
//!  * `Arc<Engine>` shared across threads (`&self` API, sharded cache);
//!  * single-flight selection — the cold-start stampede on one workload runs
//!    the O(n³) selector exactly once while the other threads wait for it;
//!  * `OwnedSession` (`Send + 'static`) moving into worker threads, each
//!    charging its own privacy-budget ledger;
//!  * `Engine::answer_batch` answering many databases for one cache lookup.
//!
//! Run with: `cargo run --release --example concurrent_server`

use adaptive_dp::core::engine::{Engine, PrivacyBudget};
use adaptive_dp::core::PrivacyParams;
use adaptive_dp::workload::range::AllRangeWorkload;
use adaptive_dp::workload::{Domain, Workload};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

const THREADS: usize = 4;
const DOMAIN: usize = 128;

fn synthetic_database(seed: usize) -> Vec<f64> {
    (0..DOMAIN)
        .map(|i| {
            let center = 20.0 + 11.0 * seed as f64;
            (400.0 * (-((i as f64 - center) / 15.0).powi(2)).exp()).round() + 10.0
        })
        .collect()
}

fn main() {
    let engine = Arc::new(
        Engine::builder()
            .privacy(PrivacyParams::new(0.5, 1e-4))
            .cache_capacity(32)
            .cache_shards(8)
            .build()
            .unwrap(),
    );

    // --- Cold-start stampede -------------------------------------------
    // Every connection asks for the same all-ranges workload at once.  The
    // first thread to miss becomes the selection leader; the rest block on
    // the in-flight selection and reuse its strategy.
    let workers: Vec<_> = (0..THREADS)
        .map(|t| {
            // An OwnedSession holds an Arc to the engine, so it can move
            // into the worker thread; its (ε, δ) ledger is per-connection.
            let mut session = engine.owned_session(PrivacyBudget::new(2.0, 1e-3));
            std::thread::spawn(move || {
                let workload = AllRangeWorkload::new(Domain::one_dim(DOMAIN));
                let database = synthetic_database(t);
                let mut rng = StdRng::seed_from_u64(40 + t as u64);
                let answer = session.answer(&workload, &database, &mut rng).unwrap();
                (
                    t,
                    answer.expected_rms_error,
                    session.remaining().epsilon,
                    answer.cache_hit,
                )
            })
        })
        .collect();
    println!("{THREADS} connections, one workload, one shared engine:");
    for w in workers {
        let (t, rms, eps_left, was_hit) = w.join().unwrap();
        println!(
            "  connection {t}: predicted RMS error {rms:.2}, ε remaining {eps_left:.2} \
             ({})",
            if was_hit {
                "reused the in-flight/cached strategy"
            } else {
                "led the strategy selection"
            }
        );
    }
    let stats = engine.stats();
    println!(
        "engine stats: {} selection(s) for {} lookups (single-flight), {} cache hits\n",
        stats.selections,
        stats.cache_hits + stats.cache_misses,
        stats.cache_hits
    );

    // --- Batched serving ------------------------------------------------
    // Answer ten more databases under the already-cached workload in one
    // call: one cache lookup, one shared factor, ten noisy answers.
    let workload = AllRangeWorkload::new(Domain::one_dim(DOMAIN));
    let fleet: Vec<Vec<f64>> = (0..10).map(synthetic_database).collect();
    let mut rng = StdRng::seed_from_u64(7);
    let answers = engine.answer_batch(&workload, &fleet, &mut rng).unwrap();
    let truth_first = workload.evaluate(&fleet[0]);
    println!(
        "answered {} databases in one batch (all cache hits: {}); \
         first database, query 0: true {:.0}, private {:.1}",
        answers.len(),
        answers.iter().all(|a| a.cache_hit),
        truth_first[0],
        answers[0].answers[0],
    );
}
