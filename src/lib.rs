//! # adaptive-dp
//!
//! A Rust implementation of the adaptive matrix mechanism of
//! *Li & Miklau, "An Adaptive Mechanism for Accurate Query Answering under
//! Differential Privacy", VLDB 2012*.
//!
//! This facade crate re-exports the workspace crates under stable module
//! names so that applications only need a single dependency:
//!
//! * [`linalg`] — dense linear algebra (matrices, factorizations, eigen);
//! * [`opt`] — the convex solvers behind optimal query weighting (Program 1);
//! * [`workload`] — linear counting query workloads and their gram matrices;
//! * [`strategies`] — prior-work strategies (identity, hierarchical, wavelet,
//!   Fourier, DataCube);
//! * [`core`] — the serving `Engine` (strategy selection — dense, low-rank
//!   and structured, unified behind one `SelectionPlan` — noise backends,
//!   plan caching and persistence, budgeted sessions), the matrix mechanism,
//!   error analysis, the Eigen-Design algorithm (Program 2) and the
//!   performance optimizations of Sec. 4;
//! * [`serve`] — the async serving tier: executor-agnostic futures over the
//!   engine, bounded admission, per-principal shared budgets, and (via
//!   [`core::engine::Engine::builder`]'s `strategy_store`) persistent
//!   cross-restart strategy caching;
//! * [`data`] — data vectors, synthetic datasets and relative-error harness.
//!
//! ## Quick start
//!
//! The primary entry point is [`core::engine::Engine`]: build it once, then
//! answer any number of workloads.  Strategy selection is data independent
//! (Sec. 1 of the paper), so the engine caches the selected strategy per
//! workload — repeated `answer` calls skip selection entirely.
//!
//! ```
//! use adaptive_dp::core::engine::{Engine, PrivacyBudget};
//! use adaptive_dp::core::PrivacyParams;
//! use adaptive_dp::workload::range::AllRangeWorkload;
//! use adaptive_dp::workload::{Domain, Workload};
//! use rand::SeedableRng;
//!
//! // All range queries over a 16-cell ordered domain.
//! let workload = AllRangeWorkload::new(Domain::one_dim(16));
//! // A (tiny) histogram of true counts.
//! let counts: Vec<f64> = (0..16).map(|i| 100.0 + i as f64).collect();
//!
//! let engine = Engine::builder()
//!     .privacy(PrivacyParams::new(1.0, 1e-4))
//!     .build()
//!     .unwrap();
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let result = engine.answer(&workload, &counts, &mut rng).unwrap();
//!
//! assert_eq!(result.answers.len(), workload.query_count());
//! assert!(result.expected_rms_error > 0.0);
//!
//! // Second call on the same workload: strategy served from the cache.
//! assert!(engine.answer(&workload, &counts, &mut rng).unwrap().cache_hit);
//!
//! // Budgeted sessions account sequential composition across answers.
//! let mut session = engine.session(PrivacyBudget::new(2.0, 1e-3));
//! assert!(session.answer(&workload, &counts, &mut rng).is_ok());
//! assert!(session.answer(&workload, &counts, &mut rng).is_ok());
//! assert!(session.answer(&workload, &counts, &mut rng).is_err()); // ε spent
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use mm_core as core;
pub use mm_data as data;
pub use mm_linalg as linalg;
pub use mm_opt as opt;
pub use mm_serve as serve;
pub use mm_strategies as strategies;
pub use mm_workload as workload;

/// The paper this workspace reproduces.
pub const PAPER: &str = "Li & Miklau, An Adaptive Mechanism for Accurate Query Answering \
under Differential Privacy, PVLDB 2012 (arXiv:1202.3807)";

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reexports_are_usable() {
        let d = crate::workload::Domain::new(&[4, 4]);
        assert_eq!(d.n_cells(), 16);
        let p = crate::core::PrivacyParams::paper_default();
        assert!(p.is_approximate());
        assert!(crate::PAPER.contains("Adaptive Mechanism"));
    }
}
