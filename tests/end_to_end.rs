//! Integration tests spanning the whole stack: workload construction, strategy
//! selection, error analysis and the mechanism itself.

use adaptive_dp::core::bounds::{rms_error_bound, workload_eigenvalues};
use adaptive_dp::core::engine::Engine;
use adaptive_dp::core::error::rms_workload_error;
use adaptive_dp::core::{eigen_design, EigenDesignOptions, PrivacyParams};
use adaptive_dp::data::synthetic::synthetic_histogram;
use adaptive_dp::strategies::datacube::datacube_strategy;
use adaptive_dp::strategies::fourier::fourier_strategy;
use adaptive_dp::strategies::hierarchical::binary_hierarchical_1d;
use adaptive_dp::strategies::wavelet::wavelet_1d;
use adaptive_dp::workload::marginal::{MarginalKind, MarginalWorkload};
use adaptive_dp::workload::prefix::PrefixWorkload;
use adaptive_dp::workload::range::AllRangeWorkload;
use adaptive_dp::workload::transform::{seeded_permutation, PermutedWorkload};
use adaptive_dp::workload::{Domain, Workload};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn privacy() -> PrivacyParams {
    PrivacyParams::paper_default()
}

/// Fig. 3(a) in miniature: on range workloads the eigen strategy beats both
/// prior strategies and stays within the paper's observed 1.3x of the bound.
#[test]
fn range_workload_eigen_dominates_prior_strategies() {
    let n = 64;
    let w = AllRangeWorkload::new(Domain::one_dim(n));
    let g = w.gram();
    let m = w.query_count();
    let p = privacy();
    let eigen = eigen_design(&g, &EigenDesignOptions::default())
        .unwrap()
        .strategy;
    let e_eigen = rms_workload_error(&g, m, &eigen, &p).unwrap();
    let e_wav = rms_workload_error(&g, m, &wavelet_1d(n), &p).unwrap();
    let e_hier = rms_workload_error(&g, m, &binary_hierarchical_1d(n), &p).unwrap();
    let bound = rms_error_bound(&workload_eigenvalues(&g).unwrap(), m, &p);
    assert!(e_eigen <= e_wav * 1.001);
    assert!(e_eigen <= e_hier * 1.001);
    assert!(
        e_eigen / bound <= 1.3,
        "approximation ratio {}",
        e_eigen / bound
    );
    // The paper reports 1.2x-2.1x improvements over the best competitor.
    assert!(e_wav.min(e_hier) / e_eigen >= 1.05);
}

/// Table 2 row 1 in miniature: permuting the cell conditions destroys the
/// wavelet/hierarchical advantage but leaves the eigen strategy unchanged.
#[test]
fn permuted_ranges_favour_the_adaptive_strategy() {
    let n = 64;
    let p = privacy();
    let base = AllRangeWorkload::new(Domain::one_dim(n));
    let permuted = PermutedWorkload::new(
        AllRangeWorkload::new(Domain::one_dim(n)),
        seeded_permutation(n, 3),
    );
    let g0 = base.gram();
    let g1 = permuted.gram();
    let m = base.query_count();

    let eigen0 = eigen_design(&g0, &EigenDesignOptions::default())
        .unwrap()
        .strategy;
    let eigen1 = eigen_design(&g1, &EigenDesignOptions::default())
        .unwrap()
        .strategy;
    let e0 = rms_workload_error(&g0, m, &eigen0, &p).unwrap();
    let e1 = rms_workload_error(&g1, m, &eigen1, &p).unwrap();
    // Representation independence (Prop. 5).
    assert!((e0 - e1).abs() / e0 < 5e-3);

    // The wavelet strategy degrades badly on the permuted workload (the
    // degradation factor grows with n; at n = 64 it is already ~2x, at the
    // paper's 2048 cells it reaches an order of magnitude).
    let wav_plain = rms_workload_error(&g0, m, &wavelet_1d(n), &p).unwrap();
    let wav_perm = rms_workload_error(&g1, m, &wavelet_1d(n), &p).unwrap();
    assert!(wav_perm > wav_plain * 1.5, "{wav_perm} vs {wav_plain}");
    assert!(
        wav_perm / e1 > 2.0,
        "eigen should win clearly on permuted ranges"
    );
}

/// Fig. 3(c) in miniature: on marginal workloads the eigen strategy essentially
/// achieves the lower bound and beats Fourier and DataCube.
#[test]
fn marginal_workload_matches_lower_bound() {
    let d = Domain::new(&[4, 4, 4]);
    let w = MarginalWorkload::all_k_way(d, 2, MarginalKind::Point);
    let g = w.gram();
    let m = w.query_count();
    let p = privacy();
    let eigen = eigen_design(&g, &EigenDesignOptions::default())
        .unwrap()
        .strategy;
    let e_eigen = rms_workload_error(&g, m, &eigen, &p).unwrap();
    let e_fourier = rms_workload_error(&g, m, &fourier_strategy(&w), &p).unwrap();
    let e_cube = rms_workload_error(&g, m, &datacube_strategy(&w), &p).unwrap();
    let bound = rms_error_bound(&workload_eigenvalues(&g).unwrap(), m, &p);
    assert!(e_eigen / bound <= 1.05, "ratio {}", e_eigen / bound);
    assert!(e_eigen <= e_fourier);
    assert!(e_eigen <= e_cube);
}

/// The CDF workload is the paper's one exception: the eigen strategy is only
/// marginally better than (or comparable to) the prior strategies.
#[test]
fn cdf_workload_is_the_hard_case() {
    let n = 64;
    let w = PrefixWorkload::new(n);
    let g = w.gram();
    let p = privacy();
    let eigen = eigen_design(&g, &EigenDesignOptions::default())
        .unwrap()
        .strategy;
    let e_eigen = rms_workload_error(&g, n, &eigen, &p).unwrap();
    let e_wav = rms_workload_error(&g, n, &wavelet_1d(n), &p).unwrap();
    // Eigen never loses by much, and does not need to win by much either.
    assert!(e_eigen <= e_wav * 1.05);
}

/// Empirical error of the full pipeline matches the analytic prediction.
/// Selection runs exactly once: every trial after the first is a cache hit.
#[test]
fn mechanism_empirical_error_matches_prediction() {
    let domain = Domain::new(&[8, 8]);
    let data = synthetic_histogram(&domain, 50_000.0, 1.0, 2, 5);
    let w = AllRangeWorkload::new(domain);
    let p = PrivacyParams::new(1.0, 1e-4);
    let engine = Engine::builder().privacy(p).build().unwrap();
    let truth = w.evaluate(data.counts());
    let mut rng = StdRng::seed_from_u64(17);
    let trials = 40;
    let mut sq = 0.0;
    let mut predicted = 0.0;
    for _ in 0..trials {
        let ans = engine.answer(&w, data.counts(), &mut rng).unwrap();
        predicted = ans.expected_rms_error;
        for (a, t) in ans.answers.iter().zip(truth.iter()) {
            sq += (a - t).powi(2);
        }
    }
    let empirical = (sq / (trials as f64 * truth.len() as f64)).sqrt();
    assert!(
        (empirical - predicted).abs() / predicted < 0.15,
        "empirical {empirical} vs predicted {predicted}"
    );
    assert_eq!(
        engine.stats().selections,
        1,
        "strategy selected once, reused {trials} times"
    );
}
