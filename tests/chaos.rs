//! Chaos acceptance suite: drives the deterministic fault injector
//! (`mm_core::faults`) through the full serving stack and checks the three
//! degradation invariants the robustness work guarantees:
//!
//! 1. **Accounting is exact under faults.**  A ledger is charged once per
//!    *successful* answer — never for a shed, expired, or poisoned request,
//!    and never twice — so `spent ε == successes × per-answer ε` holds
//!    under every fault schedule.
//! 2. **Successful answers are bit-identical to the fault-free run.**
//!    Store failures, torn writes, read errors and worker stalls change
//!    *where* a plan comes from, never *what* it is or which noise is
//!    drawn: selection is deterministic and noise is a pure function of
//!    the submitted seed.
//! 3. **Every request resolves.**  Faults produce typed errors
//!    (`PoisonedSelection`, `DeadlineExceeded`, breaker-degraded recompute)
//!    — nothing hangs, and the tier stays serviceable afterwards.
//!
//! The seeded sweep reads `MM_CHAOS_SEED` (decimal u64, default 42) so CI
//! can replay exact fault placements, and writes a JSON health/stats
//! snapshot to the path in `MM_CHAOS_JSON` when set.

use adaptive_dp::core::accounting::UserLedger;
use adaptive_dp::core::engine::{BreakerState, Engine, PrivacyBudget};
use adaptive_dp::core::{Fault, FaultSchedule, FaultSite, MechanismError, PrivacyParams};
use adaptive_dp::serve::{block_on, ServeEngine, ServeError};
use adaptive_dp::workload::range::AllRangeWorkload;
use adaptive_dp::workload::Domain;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mm-chaos-test-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn workload(n: usize) -> AllRangeWorkload {
    AllRangeWorkload::new(Domain::one_dim(n))
}

fn data(n: usize) -> Vec<f64> {
    (0..n).map(|i| 20.0 + 3.0 * i as f64).collect()
}

fn bits(answers: &[f64]) -> Vec<u64> {
    answers.iter().map(|v| v.to_bits()).collect()
}

/// The fault-free reference: a clean engine (no store, no faults) answering
/// the same workload with the same seed.  Everything a faulted run answers
/// successfully must match this bit-for-bit.
fn baseline_bits(n: usize, seed: u64) -> Vec<u64> {
    let engine = Engine::builder()
        .privacy(PrivacyParams::paper_default())
        .build()
        .expect("baseline engine builds");
    let mut rng = StdRng::seed_from_u64(seed);
    let answer = engine
        .answer(&workload(n), &data(n), &mut rng)
        .expect("baseline answer");
    bits(&answer.answers)
}

fn big_ledger(name: &str) -> UserLedger {
    UserLedger::new(name, PrivacyBudget::new(1.0e6, 0.5))
}

fn assert_spent_exactly(ledger: &UserLedger, answers: u64, per_answer_epsilon: f64) {
    let spent = ledger.spent().epsilon;
    let expected = answers as f64 * per_answer_epsilon;
    assert!(
        (spent - expected).abs() < 1e-9,
        "ledger must be charged exactly once per successful answer: \
         spent ε = {spent}, expected {answers} × {per_answer_epsilon} = {expected}"
    );
}

fn mmplan_count(dir: &Path) -> usize {
    std::fs::read_dir(dir)
        .map(|entries| {
            entries
                .flatten()
                .filter(|e| e.path().extension().is_some_and(|x| x == "mmplan"))
                .count()
        })
        .unwrap_or(0)
}

/// Schedule: every store write fails.  The breaker trips after the
/// configured threshold of consecutive failures and the engine degrades to
/// memory-only caching — answers keep flowing, bit-identical, exactly
/// charged, with no further disk traffic attempted.
#[test]
fn persistent_write_failures_trip_the_breaker_and_degrade_to_memory_only() {
    let dir = scratch_dir("write-fail");
    let engine = Arc::new(
        Engine::builder()
            .privacy(PrivacyParams::paper_default())
            .strategy_store(&dir)
            .fault_injector(FaultSchedule::new().inject_every(
                FaultSite::StoreWrite,
                1,
                Fault::Fail,
            ))
            .store_breaker(3, Duration::from_secs(600))
            .build()
            .expect("engine builds"),
    );
    let per_answer = engine.privacy().epsilon;
    let ledger = big_ledger("breaker-user");

    // Three distinct cold workloads: the first answer's save retries
    // (bounded) and fails until the breaker opens; later answers must not
    // even attempt the store.
    for (i, n) in [8usize, 9, 10].into_iter().enumerate() {
        let mut rng = StdRng::seed_from_u64(i as u64);
        let answer = engine
            .user_session(&ledger)
            .answer(&workload(n), &data(n), &mut rng)
            .unwrap_or_else(|e| panic!("answer {i} must survive store failure: {e}"));
        assert_eq!(
            bits(&answer.answers),
            baseline_bits(n, i as u64),
            "a store-degraded answer must be bit-identical to the fault-free run"
        );
    }

    let health = engine.store_health();
    assert_eq!(health.breaker, BreakerState::Open, "breaker must trip");
    assert!(health.consecutive_failures >= 3);
    let stats = engine.stats();
    assert_eq!(
        stats.store_save_failures, 3,
        "exactly the first answer's bounded retries fail; once open, no \
         further attempts are made"
    );
    assert_eq!(stats.store_writes, 0);
    assert_eq!(stats.selections, 3);
    assert_eq!(mmplan_count(&dir), 0, "no entry may land on disk");
    assert_spent_exactly(&ledger, 3, per_answer);

    let _ = std::fs::remove_dir_all(&dir);
}

/// Schedule: the first store write is torn.  The half-entry lands on disk;
/// the next engine over the directory detects it at build-time warming,
/// counts and deletes it, recomputes bit-identically, and rewrites a valid
/// entry a third engine serves warm.
#[test]
fn torn_store_write_is_counted_dropped_and_recomputed_bit_identically() {
    let dir = scratch_dir("torn-write");
    let reference = baseline_bits(12, 5);

    let first = Engine::builder()
        .privacy(PrivacyParams::paper_default())
        .strategy_store(&dir)
        .fault_injector(FaultSchedule::new().inject_at(FaultSite::StoreWrite, 0, Fault::Torn))
        .build()
        .expect("first engine builds");
    let mut rng = StdRng::seed_from_u64(5);
    let torn = first
        .answer(&workload(12), &data(12), &mut rng)
        .expect("the answer itself must survive the torn save");
    assert_eq!(bits(&torn.answers), reference);
    assert_eq!(first.stats().store_save_failures, 1);
    assert_eq!(first.stats().store_writes, 0);
    assert_eq!(mmplan_count(&dir), 1, "the torn half-entry is on disk");

    // Second engine: build-time warming hits the half-entry, drops it
    // (counted), and the answer path recomputes and rewrites cleanly.
    let second = Engine::builder()
        .privacy(PrivacyParams::paper_default())
        .strategy_store(&dir)
        .build()
        .expect("second engine builds");
    let mut rng = StdRng::seed_from_u64(5);
    let recovered = second
        .answer(&workload(12), &data(12), &mut rng)
        .expect("recovery answer");
    assert_eq!(
        bits(&recovered.answers),
        reference,
        "recomputation after corruption must be bit-identical"
    );
    let stats = second.stats();
    assert_eq!(
        stats.store_corrupt_dropped, 1,
        "the torn entry must be counted, not silently vanish"
    );
    assert_eq!(stats.selections, 1, "recomputed, not misparsed");
    assert_eq!(stats.store_writes, 1, "a clean entry is rewritten");
    assert_eq!(second.store_health().corrupt_dropped, 1);

    // Third engine: the rewritten entry serves warm.
    let third = Engine::builder()
        .privacy(PrivacyParams::paper_default())
        .strategy_store(&dir)
        .build()
        .expect("third engine builds");
    let mut rng = StdRng::seed_from_u64(5);
    let warm = third
        .answer(&workload(12), &data(12), &mut rng)
        .expect("warm answer");
    assert_eq!(bits(&warm.answers), reference);
    assert_eq!(third.stats().selections, 0, "served from the store");

    let _ = std::fs::remove_dir_all(&dir);
}

/// Schedule: every store read fails.  A populated store becomes invisible —
/// the engine recomputes (bit-identically), never misjudges the healthy
/// entry as corrupt, and leaves it intact for the next (healthy) engine.
#[test]
fn store_read_faults_recompute_bit_identically_without_judging_entries() {
    let dir = scratch_dir("read-fail");
    let reference = baseline_bits(14, 9);

    // Populate the store cleanly.
    let writer = Engine::builder()
        .privacy(PrivacyParams::paper_default())
        .strategy_store(&dir)
        .build()
        .expect("writer engine builds");
    let mut rng = StdRng::seed_from_u64(9);
    let written = writer
        .answer(&workload(14), &data(14), &mut rng)
        .expect("populating answer");
    assert_eq!(bits(&written.answers), reference);
    assert_eq!(writer.stats().store_writes, 1);

    // Reader whose every load is injected to fail: build-time warming sees
    // nothing, the answer path recomputes, and the entry is not judged.
    let reader = Engine::builder()
        .privacy(PrivacyParams::paper_default())
        .strategy_store(&dir)
        .fault_injector(FaultSchedule::new().inject_every(FaultSite::StoreRead, 1, Fault::Fail))
        .build()
        .expect("reader engine builds");
    let mut rng = StdRng::seed_from_u64(9);
    let blind = reader
        .answer(&workload(14), &data(14), &mut rng)
        .expect("read-degraded answer");
    assert_eq!(
        bits(&blind.answers),
        reference,
        "recomputation under read faults must be bit-identical"
    );
    let stats = reader.stats();
    assert_eq!(stats.selections, 1, "recomputed, store invisible");
    assert_eq!(stats.store_hits, 0);
    assert_eq!(
        stats.store_corrupt_dropped, 0,
        "an unreadable entry is not a corrupt entry"
    );
    assert_eq!(mmplan_count(&dir), 1, "the healthy entry must survive");

    // A healthy engine still serves the untouched entry warm.
    let healthy = Engine::builder()
        .privacy(PrivacyParams::paper_default())
        .strategy_store(&dir)
        .build()
        .expect("healthy engine builds");
    let mut rng = StdRng::seed_from_u64(9);
    let warm = healthy
        .answer(&workload(14), &data(14), &mut rng)
        .expect("warm answer");
    assert_eq!(bits(&warm.answers), reference);
    assert_eq!(healthy.stats().selections, 0);

    let _ = std::fs::remove_dir_all(&dir);
}

/// Schedule: the first selection panics.  Every waiter piled on the flight
/// observes the typed poison, the ledger is charged for none of them, and
/// the retry (fault consumed) answers bit-identically and charges once.
#[test]
fn selector_panic_poisons_typed_leaves_ledger_uncharged_and_recovers() {
    let engine = Arc::new(
        Engine::builder()
            .privacy(PrivacyParams::paper_default())
            .fault_injector(FaultSchedule::new().inject_at(FaultSite::Selector, 0, Fault::Panic))
            .build()
            .expect("engine builds"),
    );
    let per_answer = engine.privacy().epsilon;
    let serve = ServeEngine::builder(engine.clone()).workers(1).build();
    let ledger = big_ledger("poison-user");
    let w = Arc::new(workload(10));

    // Four ledger-charged requests onto one cold fingerprint: the injected
    // panic poisons the one shared flight.
    let futures: Vec<_> = (0..4u64)
        .map(|s| serve.answer_for(&ledger, w.clone(), data(10), s))
        .collect();
    let results = block_on(adaptive_dp::serve::join_all(futures));
    for result in &results {
        match result {
            Err(ServeError::Mechanism(e)) => {
                assert!(
                    matches!(&**e, MechanismError::PoisonedSelection(_)),
                    "expected typed poison, got {e}"
                );
                assert!(e.is_transient(), "a poisoned selection is retryable");
            }
            other => panic!("every waiter must observe the poison, got {other:?}"),
        }
    }
    assert_spent_exactly(&ledger, 0, per_answer);
    assert_eq!(serve.stats().failed, 4);

    // The schedule only faults selector call 0: the retry selects fresh,
    // answers bit-identically, and charges exactly once.
    let retry = block_on(serve.answer_for(&ledger, w, data(10), 2))
        .expect("the poisoned fingerprint must be retryable");
    assert_eq!(bits(&retry.answers), baseline_bits(10, 2));
    assert_spent_exactly(&ledger, 1, per_answer);
    assert_eq!(serve.stats().completed, 1);
}

/// Schedule: the first worker dequeue stalls far past the request deadline.
/// The request resolves typed (no hang), charges nothing, and once the
/// stalled job drains (skipped as expired, not run stale) the tier answers
/// and charges normally.
#[test]
fn deadline_expiry_under_injected_stall_resolves_typed_and_charges_nothing() {
    let engine = Arc::new(
        Engine::builder()
            .privacy(PrivacyParams::paper_default())
            .fault_injector(FaultSchedule::new().inject_at(
                FaultSite::Worker,
                0,
                Fault::LatencyMs(400),
            ))
            .build()
            .expect("engine builds"),
    );
    let per_answer = engine.privacy().epsilon;
    let serve = ServeEngine::builder(engine)
        .workers(1)
        .default_deadline(Duration::from_millis(40))
        .build();
    let ledger = big_ledger("deadline-user");
    let w = Arc::new(workload(8));

    match block_on(serve.answer_for(&ledger, w.clone(), data(8), 1)) {
        Err(ServeError::DeadlineExceeded { deadline_ms }) => assert_eq!(deadline_ms, 40),
        other => panic!("expected typed deadline expiry, got {other:?}"),
    }
    assert_spent_exactly(&ledger, 0, per_answer);
    assert_eq!(serve.stats().deadline_expired, 1);

    // The stalled worker eventually dequeues the job and skips it: the
    // founder's deadline passed, so the stale selection never runs.
    let drained = std::time::Instant::now() + Duration::from_secs(5);
    while serve.stats().jobs_expired == 0 && std::time::Instant::now() < drained {
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(serve.stats().jobs_expired, 1);

    // Tier stays serviceable under the same default deadline.
    let retry = block_on(serve.answer_for(&ledger, w, data(8), 2))
        .expect("post-expiry request must succeed");
    assert_eq!(bits(&retry.answers), baseline_bits(8, 2));
    assert_spent_exactly(&ledger, 1, per_answer);
}

/// The seeded sweep: pseudo-random store read/write faults and worker
/// stalls placed by `MM_CHAOS_SEED`, over a breaker that is allowed to
/// recover.  Every request must resolve successfully (store faults are
/// absorbed, never surfaced), bit-identical to fault-free, exactly charged
/// — and the run's health/stats snapshot is exported for the CI artifact.
#[test]
fn seeded_chaos_sweep_preserves_answers_accounting_and_liveness() {
    let seed = std::env::var("MM_CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(42);
    let dir = scratch_dir(&format!("sweep-{seed}"));
    let engine = Arc::new(
        Engine::builder()
            .privacy(PrivacyParams::paper_default())
            .strategy_store(&dir)
            .fault_injector(
                FaultSchedule::seeded(seed)
                    .with_rate(FaultSite::StoreRead, 512, Fault::Fail)
                    .with_rate(FaultSite::StoreWrite, 512, Fault::Fail)
                    .with_rate(FaultSite::Worker, 256, Fault::LatencyMs(1)),
            )
            .store_breaker(3, Duration::from_millis(10))
            .build()
            .expect("engine builds"),
    );
    let per_answer = engine.privacy().epsilon;
    let serve = ServeEngine::builder(engine.clone()).workers(2).build();
    let ledger = big_ledger("sweep-user");

    const REQUESTS: usize = 6;
    for i in 0..REQUESTS {
        let n = 8 + i;
        let w = Arc::new(workload(n));
        let answer = block_on(serve.answer_for(&ledger, w, data(n), i as u64))
            .unwrap_or_else(|e| panic!("request {i} must resolve under seed {seed}: {e}"));
        assert_eq!(
            bits(&answer.answers),
            baseline_bits(n, i as u64),
            "request {i} must be bit-identical to fault-free under seed {seed}"
        );
    }
    assert_spent_exactly(&ledger, REQUESTS as u64, per_answer);
    let stats = serve.stats();
    assert_eq!(stats.completed, REQUESTS as u64);
    assert_eq!(stats.failed, 0);
    let health = serve.health();
    assert_eq!(health.queue_depth, 0, "sweep fully drained");
    assert_eq!(health.pending_selections, 0);

    // Export the snapshot for the CI chaos artifact (hand-rolled JSON: the
    // workspace takes no serialization dependency).
    if let Ok(path) = std::env::var("MM_CHAOS_JSON") {
        let engine_stats = engine.stats();
        let store = health.store;
        let json = format!(
            concat!(
                "{{\n",
                "  \"seed\": {},\n",
                "  \"requests\": {},\n",
                "  \"serve\": {{\"submitted\": {}, \"completed\": {}, \"failed\": {}, ",
                "\"shed\": {}, \"rejected\": {}, \"deadline_expired\": {}, ",
                "\"jobs_expired\": {}, \"poisoned_flights\": {}}},\n",
                "  \"store\": {{\"breaker\": \"{}\", \"consecutive_failures\": {}, ",
                "\"corrupt_dropped\": {}, \"save_failures\": {}}},\n",
                "  \"engine\": {{\"selections\": {}, \"store_hits\": {}, ",
                "\"store_writes\": {}, \"store_save_failures\": {}, ",
                "\"store_corrupt_dropped\": {}}}\n",
                "}}\n"
            ),
            seed,
            REQUESTS,
            stats.submitted,
            stats.completed,
            stats.failed,
            stats.shed,
            stats.rejected,
            stats.deadline_expired,
            stats.jobs_expired,
            health.poisoned_flights,
            store.breaker,
            store.consecutive_failures,
            store.corrupt_dropped,
            store.save_failures,
            engine_stats.selections,
            engine_stats.store_hits,
            engine_stats.store_writes,
            engine_stats.store_save_failures,
            engine_stats.store_corrupt_dropped,
        );
        std::fs::write(&path, json).expect("write chaos snapshot");
    }

    let _ = std::fs::remove_dir_all(&dir);
}
