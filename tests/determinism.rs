//! The determinism contract of the parallel kernels (`mm_linalg::parallel`):
//! for a fixed input, the blocked/threaded Cholesky, symmetric eigensolver,
//! SYRK/TRSM kernels and the end-to-end `Engine::answer` pipeline must
//! produce **bit-identical** results for every thread count.  Work is
//! partitioned over fixed block boundaries with per-block sequential
//! accumulation, so `MM_LINALG_THREADS=1` and `=4` may differ only in
//! wall-clock time.
//!
//! The whole check lives in a single `#[test]` because the thread-count
//! override is process-global: integration-test binaries run their `#[test]`
//! fns on parallel threads, and nothing else in this binary may race it.

use adaptive_dp::core::{Engine, PrivacyParams};
use adaptive_dp::linalg::decomp::{Cholesky, SymmetricEigen};
use adaptive_dp::linalg::{ops, parallel, Matrix};
use adaptive_dp::workload::range::AllRangeWorkload;
use adaptive_dp::workload::{Domain, RangeQueryWorkload, Workload};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Everything one pass over the kernels produces, as raw bit patterns.
#[derive(Debug, PartialEq, Eq)]
struct KernelBits {
    cholesky_factor: Vec<u64>,
    trace_term: u64,
    eigenvalues: Vec<u64>,
    eigenvectors: Vec<u64>,
    syrk: Vec<u64>,
    trsm: Vec<u64>,
    matmul: Vec<u64>,
    engine_answers: Vec<u64>,
    engine_estimate: Vec<u64>,
    structured_answers: Vec<u64>,
    structured_estimate: Vec<u64>,
}

fn bits_of(values: &[f64]) -> Vec<u64> {
    values.iter().map(|v| v.to_bits()).collect()
}

/// Sizes are chosen so every parallel path actually engages when more than
/// one thread is allowed: the matmul threshold (rows ≥ 96, work > 10⁶), the
/// SYRK/TRSM work floor (32 768) and the eigensolver floor (16 384).
fn run_kernels() -> KernelBits {
    // Blocked Cholesky + the multi-RHS trace term on a dense SPD gram.
    let n = 192;
    let b = Matrix::from_fn(n, n, |i, j| ((i * 7 + j * 11) % 19) as f64 / 19.0 - 0.5);
    let mut g = ops::gram(&b);
    for i in 0..n {
        g[(i, i)] += n as f64 / 8.0;
    }
    let factor = Cholesky::new(&g).expect("gram is SPD");
    let trace = factor
        .trace_of_gram_times_inverse(&g)
        .expect("dimensions match");

    // Symmetric eigendecomposition of a structured (degenerate-spectrum)
    // workload gram — the hard case for the QL sweeps.  n = 192 clears the
    // eigensolver's 16 384-entry parallel floor for *every* phase including
    // the tred2 rank-2 update (which needs (l+1)²/2 ≥ 16 384, i.e. n ≥ 182).
    let eig_gram = AllRangeWorkload::new(Domain::one_dim(192)).gram();
    let eig = SymmetricEigen::new(&eig_gram).expect("gram is symmetric");

    // Raw SYRK / TRSM / matmul kernels.
    let a = Matrix::from_fn(200, 64, |i, j| ((i * 5 + j * 13) % 23) as f64 - 11.0);
    let mut c = Matrix::from_fn(220, 220, |i, j| ((i * 3 + j * 7) % 31) as f64);
    ops::syrk_sub_lower(&mut c, &a, 20).expect("shapes match");
    let l = Matrix::from_fn(64, 64, |i, j| {
        if j < i {
            ((i * 7 + j * 5) % 9) as f64 / 4.0 - 1.0
        } else if j == i {
            2.0 + (i % 3) as f64
        } else {
            0.0
        }
    });
    let mut x = Matrix::from_fn(300, 64, |i, j| ((i * 13 + j * 3) % 11) as f64 - 5.0);
    ops::trsm_right_transpose_lower(&mut x, &l).expect("solvable");
    let m1 = Matrix::from_fn(128, 128, |i, j| ((i * 31 + j * 17) % 13) as f64 - 6.0);
    let m2 = Matrix::from_fn(128, 128, |i, j| ((i * 7 + j * 3) % 11) as f64 - 5.0);
    let prod = ops::matmul(&m1, &m2).expect("shapes match");

    // End to end: a cold engine answer (selection, factor, trace term,
    // mechanism run) with a fixed rng.
    let workload = AllRangeWorkload::new(Domain::one_dim(128));
    let data: Vec<f64> = (0..128).map(|i| 100.0 + (i % 17) as f64).collect();
    let engine = Engine::new(PrivacyParams::paper_default());
    let mut rng = StdRng::seed_from_u64(42);
    let answer = engine
        .answer(&workload, &data, &mut rng)
        .expect("engine answers");

    // The matrix-free structured path: interval workload, run-length Haar
    // strategy, CG reconstruction.  Large enough (n = 4096) that any
    // thread-count-dependent accumulation in the operator applies, the CG
    // reductions, or the evaluation pass would surface in the bits.
    let sw = RangeQueryWorkload::prefixes(4096);
    let sdata: Vec<f64> = (0..4096).map(|i| 60.0 + (i % 23) as f64).collect();
    let mut rng = StdRng::seed_from_u64(43);
    let structured = engine
        .answer_structured(&sw, &sdata, &mut rng)
        .expect("structured engine answers");

    KernelBits {
        cholesky_factor: bits_of(factor.l().as_slice()),
        trace_term: trace.to_bits(),
        eigenvalues: bits_of(eig.eigenvalues()),
        eigenvectors: bits_of(eig.eigenvectors().as_slice()),
        syrk: bits_of(c.as_slice()),
        trsm: bits_of(x.as_slice()),
        matmul: bits_of(prod.as_slice()),
        engine_answers: bits_of(&answer.answers),
        engine_estimate: bits_of(&answer.estimate),
        structured_answers: bits_of(&structured.answers),
        structured_estimate: bits_of(&structured.estimate),
    }
}

/// The persistent-store half of the determinism contract: a selection
/// spilled to disk and warm-loaded by a *fresh* engine must reproduce the
/// original bit-for-bit — strategy matrix, Cholesky factor, Prop. 4 trace
/// term and, with a fixed rng, the final answers.  (Thread counts may
/// change between the two engines; the kernel contract above makes that
/// irrelevant.)
#[test]
fn persisted_selections_round_trip_bit_identically() {
    use adaptive_dp::core::engine::PrivacyBudget;

    let dir = std::env::temp_dir().join(format!("mm-determinism-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let workload = AllRangeWorkload::new(Domain::one_dim(96));
    let data: Vec<f64> = (0..96).map(|i| 40.0 + (i % 13) as f64).collect();

    let cold = Engine::builder()
        .privacy(PrivacyParams::paper_default())
        .strategy_store(&dir)
        .build()
        .expect("engine with store builds");
    let mut rng = StdRng::seed_from_u64(7);
    let cold_answer = cold
        .answer(&workload, &data, &mut rng)
        .expect("cold answer");
    let (cold_strategy, fp, _) = cold.select(&workload).expect("cold selection");
    let cold_entry = cold
        .cached_selection(fp)
        .expect("selection is cached after answering");
    assert_eq!(cold.stats().selections, 1, "cold engine ran the selector");
    assert_eq!(
        cold.stats().store_writes,
        1,
        "selection spilled to the store"
    );

    // A brand-new engine over the same directory: warmed at build time,
    // never runs the selector.
    let warm = Engine::builder()
        .privacy(PrivacyParams::paper_default())
        .strategy_store(&dir)
        .build()
        .expect("warm engine builds");
    let mut rng = StdRng::seed_from_u64(7);
    let warm_answer = warm
        .answer(&workload, &data, &mut rng)
        .expect("warm answer");
    let (warm_strategy, warm_fp, hit) = warm.select(&workload).expect("warm selection");
    assert_eq!(warm_fp, fp);
    assert!(hit, "warm engine serves the persisted selection from cache");
    assert_eq!(warm.stats().selections, 0, "warm engine never selects");

    // Strategy (gram, explicit matrix, sensitivities), factor and trace
    // term: bit-identical.
    assert_eq!(
        bits_of(cold_strategy.gram().as_slice()),
        bits_of(warm_strategy.gram().as_slice()),
        "strategy grams differ after the store round-trip"
    );
    assert_eq!(
        cold_strategy.matrix().map(|m| bits_of(m.as_slice())),
        warm_strategy.matrix().map(|m| bits_of(m.as_slice())),
        "strategy matrices differ after the store round-trip"
    );
    assert_eq!(
        cold_strategy.l2_sensitivity().to_bits(),
        warm_strategy.l2_sensitivity().to_bits()
    );
    assert_eq!(
        cold_strategy.l1_sensitivity().to_bits(),
        warm_strategy.l1_sensitivity().to_bits()
    );
    let warm_entry = warm.cached_selection(fp).expect("warm selection cached");
    assert_eq!(
        bits_of(cold_entry.factor().unwrap().l().as_slice()),
        bits_of(warm_entry.factor().unwrap().l().as_slice()),
        "Cholesky factors differ after the store round-trip"
    );
    let gram = workload.gram();
    assert_eq!(
        cold_entry.trace_term(&gram).unwrap().to_bits(),
        warm_entry.trace_term(&gram).unwrap().to_bits(),
        "trace terms differ after the store round-trip"
    );

    // And therefore the answers are too (same seed, same noise).
    assert_eq!(bits_of(&cold_answer.answers), bits_of(&warm_answer.answers));
    assert_eq!(
        bits_of(&cold_answer.estimate),
        bits_of(&warm_answer.estimate)
    );

    // Sanity: budgeted sessions see identical accounting on both engines.
    let mut s = warm.session(PrivacyBudget::new(1.0, 1e-3));
    let mut rng = StdRng::seed_from_u64(8);
    assert!(s.answer(&workload, &data, &mut rng).is_ok());

    let _ = std::fs::remove_dir_all(&dir);
}

/// The full-rank parity half of the Low-Rank Mechanism's contract: when the
/// requested rank covers the whole spectrum (r ≥ n) the engine delegates to
/// the dense selector under the *unmixed* fingerprint, so a low-rank engine
/// is the dense engine — same plan kind, same fingerprint, and bit-identical
/// answers on the same rng stream.
#[test]
fn full_rank_low_rank_engine_is_bit_identical_to_dense() {
    use adaptive_dp::core::PlanKind;

    let workload = AllRangeWorkload::new(Domain::one_dim(64));
    let data: Vec<f64> = (0..64).map(|i| 80.0 + (i % 11) as f64).collect();

    let dense = Engine::new(PrivacyParams::paper_default());
    let mut rng = StdRng::seed_from_u64(5);
    let dense_answer = dense
        .answer(&workload, &data, &mut rng)
        .expect("dense answer");

    let low_rank = Engine::builder()
        .privacy(PrivacyParams::paper_default())
        .low_rank(64)
        .build()
        .expect("full-rank low-rank engine builds");
    let mut rng = StdRng::seed_from_u64(5);
    let lr_answer = low_rank
        .answer(&workload, &data, &mut rng)
        .expect("full-rank answer");

    assert_eq!(
        bits_of(&dense_answer.answers),
        bits_of(&lr_answer.answers),
        "full-rank low-rank answers drifted from dense"
    );
    assert_eq!(
        bits_of(&dense_answer.estimate),
        bits_of(&lr_answer.estimate),
        "full-rank low-rank estimate drifted from dense"
    );

    let (_, dense_fp, _) = dense.select(&workload).expect("dense select");
    let (plan, lr_fp, _) = low_rank
        .select_plan_for(&workload)
        .expect("full-rank select");
    assert_eq!(lr_fp, dense_fp, "rank ≥ n must not mix the fingerprint");
    assert_eq!(plan.kind(), PlanKind::Dense, "rank ≥ n delegates to dense");
    assert_eq!(low_rank.stats().dense_selections, 1);
    assert_eq!(low_rank.stats().low_rank_selections, 0);
}

/// The low-rank persistence half: a `SelectionPlan::LowRank` spilled to the
/// unified `.mmplan` store and warm-loaded by a fresh engine reproduces the
/// original bit-for-bit — basis, subspace gram, captured mass and, with a
/// fixed rng, the final answers — without ever re-running the selector.
#[test]
fn persisted_low_rank_plans_round_trip_bit_identically() {
    use adaptive_dp::core::PlanKind;

    let dir = std::env::temp_dir().join(format!("mm-determinism-lowrank-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let workload = AllRangeWorkload::new(Domain::one_dim(96));
    let data: Vec<f64> = (0..96).map(|i| 70.0 + (i % 19) as f64).collect();

    let cold = Engine::builder()
        .privacy(PrivacyParams::paper_default())
        .strategy_store(&dir)
        .low_rank(24)
        .build()
        .expect("cold low-rank engine builds");
    let mut rng = StdRng::seed_from_u64(11);
    let cold_answer = cold
        .answer(&workload, &data, &mut rng)
        .expect("cold low-rank answer");
    let (cold_plan, fp, _) = cold.select_plan_for(&workload).expect("cold plan");
    assert_eq!(cold_plan.kind(), PlanKind::LowRank);
    assert_eq!(cold.stats().low_rank_selections, 1);
    assert_eq!(cold.stats().store_writes, 1, "plan spilled to the store");

    let warm = Engine::builder()
        .privacy(PrivacyParams::paper_default())
        .strategy_store(&dir)
        .low_rank(24)
        .build()
        .expect("warm low-rank engine builds");
    let mut rng = StdRng::seed_from_u64(11);
    let warm_answer = warm
        .answer(&workload, &data, &mut rng)
        .expect("warm low-rank answer");
    let (warm_plan, warm_fp, hit) = warm.select_plan_for(&workload).expect("warm plan");
    assert_eq!(warm_fp, fp, "store round-trip must preserve the mixed key");
    assert!(hit, "warm engine serves the persisted plan from cache");
    assert_eq!(warm.stats().selections, 0, "warm engine never selects");

    let cold_lr = cold_plan.as_low_rank().expect("cold plan is low-rank");
    let warm_lr = warm_plan.as_low_rank().expect("warm plan is low-rank");
    assert_eq!(
        bits_of(cold_lr.basis().as_slice()),
        bits_of(warm_lr.basis().as_slice()),
        "bases differ after the store round-trip"
    );
    assert_eq!(
        bits_of(cold_lr.subspace_gram().as_slice()),
        bits_of(warm_lr.subspace_gram().as_slice()),
        "subspace grams differ after the store round-trip"
    );
    assert_eq!(cold_lr.retained_rank(), warm_lr.retained_rank());
    assert_eq!(
        cold_lr.captured_mass().to_bits(),
        warm_lr.captured_mass().to_bits()
    );
    assert_eq!(bits_of(&cold_answer.answers), bits_of(&warm_answer.answers));
    assert_eq!(
        bits_of(&cold_answer.estimate),
        bits_of(&warm_answer.estimate)
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn kernels_and_engine_are_bit_identical_across_thread_counts() {
    let single = {
        parallel::set_max_threads(Some(1));
        run_kernels()
    };
    for threads in [2usize, 4] {
        parallel::set_max_threads(Some(threads));
        let multi = run_kernels();
        assert!(
            single == multi,
            "results differ between 1 and {threads} worker threads"
        );
    }
    parallel::set_max_threads(None);
    // The machine default (whatever it is) agrees with the forced counts.
    let default = run_kernels();
    assert!(single == default, "default thread count changes results");
}
