//! Workspace-level acceptance tests for the serving tier: persistent-store
//! corruption handling, typed poisoned-flight recovery under real thread
//! contention, and cross-session budget enforcement through one shared
//! `UserLedger`.

use adaptive_dp::core::accounting::UserLedger;
use adaptive_dp::core::engine::{
    Engine, PrivacyBudget, SelectionContext, StrategyCache, StrategySelector, StrategyStore,
    PLAN_STORE_VERSION,
};
use adaptive_dp::core::{MechanismError, PrivacyParams};
use adaptive_dp::strategies::Strategy;
use adaptive_dp::workload::range::AllRangeWorkload;
use adaptive_dp::workload::Domain;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mm-serving-test-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn store_engine(dir: &Path) -> Engine {
    Engine::builder()
        .privacy(PrivacyParams::paper_default())
        .strategy_store(dir)
        .build()
        .expect("engine with store builds")
}

/// The single `.mmplan` entry file in a store directory.
fn entry_file(dir: &Path) -> PathBuf {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)
        .expect("store dir exists")
        .flatten()
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|e| e == "mmplan"))
        .collect();
    assert_eq!(entries.len(), 1, "expected exactly one store entry");
    entries.pop().unwrap()
}

/// Populates a store with one persisted selection and returns the engine's
/// answer bits for later comparison.
fn populate(dir: &Path, workload: &AllRangeWorkload, data: &[f64]) -> Vec<u64> {
    let engine = store_engine(dir);
    let mut rng = StdRng::seed_from_u64(3);
    let answer = engine
        .answer(workload, data, &mut rng)
        .expect("cold answer");
    assert_eq!(engine.stats().store_writes, 1);
    answer.answers.iter().map(|v| v.to_bits()).collect()
}

/// Every corruption mode must degrade to a fresh selection — identical
/// answers, never garbage — and leave behind a rewritten, valid entry.
fn assert_recovers_from_corruption(tag: &str, corrupt: impl FnOnce(&Path)) {
    let dir = scratch_dir(tag);
    let workload = AllRangeWorkload::new(Domain::one_dim(48));
    let data: Vec<f64> = (0..48).map(|i| 20.0 + (i % 7) as f64).collect();
    let expected = populate(&dir, &workload, &data);

    corrupt(&entry_file(&dir));

    // The corrupted entry is detected (checksum / header / bounds), removed,
    // and the selector runs fresh: the answer is bit-identical to the
    // original, not wrong, and the store ends up valid again.
    let engine = store_engine(&dir);
    let mut rng = StdRng::seed_from_u64(3);
    let answer = engine
        .answer(&workload, &data, &mut rng)
        .expect("recovered answer");
    let bits: Vec<u64> = answer.answers.iter().map(|v| v.to_bits()).collect();
    assert_eq!(bits, expected, "corruption fallback changed the answers");
    assert_eq!(engine.stats().selections, 1, "the selector ran fresh");
    assert_eq!(
        engine.stats().store_writes,
        1,
        "a valid entry was rewritten"
    );

    // Proof the rewrite is valid: a third engine warms from it and answers
    // without selecting.
    let warmed = store_engine(&dir);
    let mut rng = StdRng::seed_from_u64(3);
    let answer = warmed
        .answer(&workload, &data, &mut rng)
        .expect("warm answer");
    let bits: Vec<u64> = answer.answers.iter().map(|v| v.to_bits()).collect();
    assert_eq!(bits, expected);
    assert_eq!(warmed.stats().selections, 0, "warm engine never selects");

    let _ = std::fs::remove_dir_all(&dir);
}

/// Warm-load order regression: when the store holds more entries than the
/// warm limit, the entries loaded must be the numerically smallest
/// fingerprints — a pure function of the store's contents, never of the
/// OS's directory enumeration order.  (The warm path used to sort by path,
/// which only coincided with fingerprint order because the filename scheme
/// zero-pads; this pins the contract directly.)
#[test]
fn store_warm_order_is_ascending_fingerprints_not_directory_order() {
    let dir = scratch_dir("warm-order");
    let engine = store_engine(&dir);
    let mut rng = StdRng::seed_from_u64(7);
    for n in [4usize, 8, 16, 32, 64, 128] {
        let workload = AllRangeWorkload::new(Domain::one_dim(n));
        let counts = vec![1.0; n];
        engine.answer(&workload, &counts, &mut rng).expect("answer");
    }

    // Every persisted fingerprint, read back from the store's filenames.
    let mut fps: Vec<u64> = std::fs::read_dir(&dir)
        .expect("store dir exists")
        .flatten()
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|e| e == "mmplan"))
        .filter_map(|p| {
            p.file_stem()
                .and_then(|s| s.to_str())
                .and_then(|s| u64::from_str_radix(s, 16).ok())
        })
        .collect();
    fps.sort_unstable();
    assert_eq!(fps.len(), 6, "one entry per distinct workload");

    let limit = 3;
    let store = StrategyStore::open(&dir).expect("open store");
    let cache = StrategyCache::new(64);
    assert_eq!(store.warm(&cache, limit), limit);
    for (rank, &raw) in fps.iter().enumerate() {
        assert_eq!(
            cache.get(adaptive_dp::workload::Fingerprint(raw)).is_some(),
            rank < limit,
            "fingerprint {raw:#018x} at ascending rank {rank} (limit {limit})"
        );
    }

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn store_recovers_from_truncated_entry() {
    assert_recovers_from_corruption("truncated", |path| {
        let bytes = std::fs::read(path).expect("read entry");
        std::fs::write(path, &bytes[..bytes.len() / 2]).expect("truncate entry");
    });
}

#[test]
fn store_recovers_from_bit_flipped_payload() {
    assert_recovers_from_corruption("bitflip", |path| {
        let mut bytes = std::fs::read(path).expect("read entry");
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(path, bytes).expect("rewrite entry");
    });
}

#[test]
fn store_recovers_from_wrong_version_header() {
    assert_recovers_from_corruption("version", |path| {
        let mut bytes = std::fs::read(path).expect("read entry");
        // Bytes 8..12 hold the format version (little-endian u32, after the
        // 8-byte magic).
        let bumped = (PLAN_STORE_VERSION + 1).to_le_bytes();
        bytes[8..12].copy_from_slice(&bumped);
        std::fs::write(path, bytes).expect("rewrite entry");
    });
}

/// Panics on the first selection, then delegates to the default selector.
struct PanicOnceSelector {
    panicked: AtomicBool,
    inner: adaptive_dp::core::engine::EigenDesignSelector,
}

impl std::fmt::Debug for PanicOnceSelector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PanicOnceSelector").finish_non_exhaustive()
    }
}

impl StrategySelector for PanicOnceSelector {
    fn name(&self) -> String {
        "panic-once".into()
    }

    fn select(&self, ctx: &SelectionContext) -> adaptive_dp::core::Result<Strategy> {
        if !self.panicked.swap(true, Ordering::SeqCst) {
            panic!("injected selector crash");
        }
        self.inner.select(ctx)
    }
}

/// The single-flight poisoning regression: a selection leader that panics
/// must not strand concurrent waiters — every surviving thread observes the
/// typed poison, retries, and answers.
#[test]
fn waiting_threads_recover_from_a_panicking_selection_leader() {
    const THREADS: usize = 6;
    let engine = Arc::new(
        Engine::builder()
            .privacy(PrivacyParams::paper_default())
            .selector(PanicOnceSelector {
                panicked: AtomicBool::new(false),
                inner: Default::default(),
            })
            .build()
            .expect("engine builds"),
    );
    let barrier = Arc::new(std::sync::Barrier::new(THREADS));
    let handles: Vec<_> = (0..THREADS)
        .map(|i| {
            let engine = engine.clone();
            let barrier = barrier.clone();
            std::thread::spawn(move || {
                let workload = AllRangeWorkload::new(Domain::one_dim(32));
                let data: Vec<f64> = (0..32).map(|c| 10.0 + c as f64).collect();
                barrier.wait();
                let mut rng = StdRng::seed_from_u64(i as u64);
                engine.answer(&workload, &data, &mut rng).map(|_| ())
            })
        })
        .collect();

    let mut ok = 0usize;
    let mut panicked = 0usize;
    for handle in handles {
        match handle.join() {
            Ok(Ok(())) => ok += 1,
            Ok(Err(e)) => panic!("no thread may see a mechanism error, got {e}"),
            Err(_) => panicked += 1,
        }
    }
    // Exactly the leader's thread dies of the injected panic; every waiter
    // recovers by re-running the (now healthy) selection.
    assert_eq!(panicked, 1, "only the panicking leader's thread may die");
    assert_eq!(ok, THREADS - 1, "every waiter must recover and answer");
    let stats = engine.stats();
    assert!(
        stats.poisoned_flights >= 1,
        "the engine must record the recovered poisoned flight, stats: {stats:?}"
    );
}

/// The cross-session accounting acceptance test: one principal, one ledger,
/// any number of sessions — the (ε, δ) budget admits the same total number
/// of answers whether one session spends it or two share it, and the
/// over-budget request fails with `BudgetExhausted`.
#[test]
fn sessions_sharing_a_ledger_jointly_exhaust_one_budget() {
    let workload = AllRangeWorkload::new(Domain::one_dim(24));
    let data: Vec<f64> = (0..24).map(|i| 5.0 + i as f64).collect();
    let engine = Arc::new(
        Engine::builder()
            .privacy(PrivacyParams::paper_default())
            .build()
            .expect("engine builds"),
    );
    let per_answer = engine.privacy();
    let budget = || PrivacyBudget::new(per_answer.epsilon * 4.5, (per_answer.delta * 4.5).min(0.5));

    // Baseline: a single session drains the budget alone.
    let solo = UserLedger::new("dana", budget());
    let mut session = engine.user_session(&solo);
    let mut rng = StdRng::seed_from_u64(1);
    let mut solo_answers = 0usize;
    loop {
        match session.answer(&workload, &data, &mut rng) {
            Ok(_) => solo_answers += 1,
            Err(MechanismError::BudgetExhausted { .. }) => break,
            Err(e) => panic!("unexpected error draining solo budget: {e}"),
        }
        assert!(solo_answers < 100, "budget never exhausted");
    }
    assert_eq!(solo_answers, 4, "the budget admits exactly four answers");

    // Two concurrent sessions of the same principal share one ledger: their
    // joint total equals the single-session count — sharing can never mint
    // extra budget.
    let shared = UserLedger::new("dana-2", budget());
    let mut a = engine.user_session(&shared);
    let mut b = engine.user_session(&shared);
    let mut joint_answers = 0usize;
    let mut rng = StdRng::seed_from_u64(2);
    for round in 0..4 {
        let session = if round % 2 == 0 { &mut a } else { &mut b };
        session
            .answer(&workload, &data, &mut rng)
            .expect("within budget");
        joint_answers += 1;
    }
    assert_eq!(joint_answers, solo_answers);
    // The budget is spent: *both* sessions now get the typed exhaustion.
    for session in [&mut a, &mut b] {
        match session.answer(&workload, &data, &mut rng) {
            Err(MechanismError::BudgetExhausted { .. }) => {}
            other => panic!("expected BudgetExhausted, got {other:?}"),
        }
    }
    assert!(shared.remaining().epsilon < per_answer.epsilon);
}

/// The serve tier composes with everything above: a `ServeEngine` over a
/// store-backed engine answers through futures, and a second serve tier over
/// a fresh engine on the same directory starts warm.
#[test]
fn serve_tier_over_persistent_store_restarts_warm() {
    use adaptive_dp::serve::{block_on, ServeEngine};

    let dir = scratch_dir("serve-store");
    let workload = Arc::new(AllRangeWorkload::new(Domain::one_dim(40)));
    let data: Vec<f64> = (0..40).map(|i| 30.0 + i as f64).collect();

    let first = ServeEngine::builder(Arc::new(store_engine(&dir))).build();
    let cold = block_on(first.answer(workload.clone(), data.clone(), 11)).expect("cold serve");
    assert_eq!(first.engine().stats().selections, 1);
    assert_eq!(first.engine().stats().store_writes, 1);
    drop(first);

    let second = ServeEngine::builder(Arc::new(store_engine(&dir))).build();
    let warm = block_on(second.answer(workload, data, 11)).expect("warm serve");
    assert_eq!(
        second.engine().stats().selections,
        0,
        "the restarted tier serves from the persisted selection"
    );
    for (a, b) in cold.answers.iter().zip(&warm.answers) {
        assert_eq!(a.to_bits(), b.to_bits());
    }

    let _ = std::fs::remove_dir_all(&dir);
}

/// The serve tier round-trips `SelectionPlan::LowRank` through the unified
/// store: a low-rank engine's futures key on the mixed plan fingerprint,
/// the plan persists as a `.mmplan` entry, and a restarted serve tier over
/// the same directory answers warm and bit-identically without selecting.
#[test]
fn serve_tier_round_trips_low_rank_plans_through_the_store() {
    use adaptive_dp::core::engine::PlanKind;
    use adaptive_dp::serve::{block_on, ServeEngine};

    let dir = scratch_dir("serve-lowrank");
    let low_rank_engine = |dir: &Path| {
        Engine::builder()
            .privacy(PrivacyParams::paper_default())
            .strategy_store(dir)
            .low_rank(16)
            .build()
            .expect("low-rank engine with store builds")
    };
    let workload = Arc::new(AllRangeWorkload::new(Domain::one_dim(40)));
    let data: Vec<f64> = (0..40).map(|i| 30.0 + i as f64).collect();

    let first = ServeEngine::builder(Arc::new(low_rank_engine(&dir))).build();
    let cold = block_on(first.answer(workload.clone(), data.clone(), 21)).expect("cold serve");
    assert_eq!(first.engine().stats().low_rank_selections, 1);
    assert_eq!(first.engine().stats().store_writes, 1);
    let (plan, _, _) = first.engine().select_plan_for(&*workload).expect("plan");
    assert_eq!(plan.kind(), PlanKind::LowRank);
    drop(first);

    let second = ServeEngine::builder(Arc::new(low_rank_engine(&dir))).build();
    let warm = block_on(second.answer(workload.clone(), data, 21)).expect("warm serve");
    assert_eq!(
        second.engine().stats().selections,
        0,
        "the restarted tier serves the persisted low-rank plan"
    );
    let (plan, _, _) = second.engine().select_plan_for(&*workload).expect("warm plan");
    assert_eq!(plan.kind(), PlanKind::LowRank);
    for (a, b) in cold.answers.iter().zip(&warm.answers) {
        assert_eq!(a.to_bits(), b.to_bits());
    }

    let _ = std::fs::remove_dir_all(&dir);
}
