//! Workspace-level acceptance tests for the serving tier: persistent-store
//! corruption handling, typed poisoned-flight recovery under real thread
//! contention, and cross-session budget enforcement through one shared
//! `UserLedger`.

use adaptive_dp::core::accounting::UserLedger;
use adaptive_dp::core::engine::{
    Engine, PrivacyBudget, SelectionContext, StrategyCache, StrategySelector, StrategyStore,
    PLAN_STORE_VERSION,
};
use adaptive_dp::core::{MechanismError, PrivacyParams};
use adaptive_dp::strategies::Strategy;
use adaptive_dp::workload::range::AllRangeWorkload;
use adaptive_dp::workload::Domain;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mm-serving-test-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn store_engine(dir: &Path) -> Engine {
    Engine::builder()
        .privacy(PrivacyParams::paper_default())
        .strategy_store(dir)
        .build()
        .expect("engine with store builds")
}

/// The single `.mmplan` entry file in a store directory.
fn entry_file(dir: &Path) -> PathBuf {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)
        .expect("store dir exists")
        .flatten()
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|e| e == "mmplan"))
        .collect();
    assert_eq!(entries.len(), 1, "expected exactly one store entry");
    entries.pop().unwrap()
}

/// Populates a store with one persisted selection and returns the engine's
/// answer bits for later comparison.
fn populate(dir: &Path, workload: &AllRangeWorkload, data: &[f64]) -> Vec<u64> {
    let engine = store_engine(dir);
    let mut rng = StdRng::seed_from_u64(3);
    let answer = engine
        .answer(workload, data, &mut rng)
        .expect("cold answer");
    assert_eq!(engine.stats().store_writes, 1);
    answer.answers.iter().map(|v| v.to_bits()).collect()
}

/// Every corruption mode must degrade to a fresh selection — identical
/// answers, never garbage — and leave behind a rewritten, valid entry.
fn assert_recovers_from_corruption(tag: &str, corrupt: impl FnOnce(&Path)) {
    let dir = scratch_dir(tag);
    let workload = AllRangeWorkload::new(Domain::one_dim(48));
    let data: Vec<f64> = (0..48).map(|i| 20.0 + (i % 7) as f64).collect();
    let expected = populate(&dir, &workload, &data);

    corrupt(&entry_file(&dir));

    // The corrupted entry is detected (checksum / header / bounds), removed,
    // and the selector runs fresh: the answer is bit-identical to the
    // original, not wrong, and the store ends up valid again.
    let engine = store_engine(&dir);
    let mut rng = StdRng::seed_from_u64(3);
    let answer = engine
        .answer(&workload, &data, &mut rng)
        .expect("recovered answer");
    let bits: Vec<u64> = answer.answers.iter().map(|v| v.to_bits()).collect();
    assert_eq!(bits, expected, "corruption fallback changed the answers");
    assert_eq!(engine.stats().selections, 1, "the selector ran fresh");
    assert_eq!(
        engine.stats().store_writes,
        1,
        "a valid entry was rewritten"
    );

    // Proof the rewrite is valid: a third engine warms from it and answers
    // without selecting.
    let warmed = store_engine(&dir);
    let mut rng = StdRng::seed_from_u64(3);
    let answer = warmed
        .answer(&workload, &data, &mut rng)
        .expect("warm answer");
    let bits: Vec<u64> = answer.answers.iter().map(|v| v.to_bits()).collect();
    assert_eq!(bits, expected);
    assert_eq!(warmed.stats().selections, 0, "warm engine never selects");

    let _ = std::fs::remove_dir_all(&dir);
}

/// Warm-load order regression: when the store holds more entries than the
/// warm limit, the entries loaded must be the numerically smallest
/// fingerprints — a pure function of the store's contents, never of the
/// OS's directory enumeration order.  (The warm path used to sort by path,
/// which only coincided with fingerprint order because the filename scheme
/// zero-pads; this pins the contract directly.)
#[test]
fn store_warm_order_is_ascending_fingerprints_not_directory_order() {
    let dir = scratch_dir("warm-order");
    let engine = store_engine(&dir);
    let mut rng = StdRng::seed_from_u64(7);
    for n in [4usize, 8, 16, 32, 64, 128] {
        let workload = AllRangeWorkload::new(Domain::one_dim(n));
        let counts = vec![1.0; n];
        engine.answer(&workload, &counts, &mut rng).expect("answer");
    }

    // Every persisted fingerprint, read back from the store's filenames.
    let mut fps: Vec<u64> = std::fs::read_dir(&dir)
        .expect("store dir exists")
        .flatten()
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|e| e == "mmplan"))
        .filter_map(|p| {
            p.file_stem()
                .and_then(|s| s.to_str())
                .and_then(|s| u64::from_str_radix(s, 16).ok())
        })
        .collect();
    fps.sort_unstable();
    assert_eq!(fps.len(), 6, "one entry per distinct workload");

    let limit = 3;
    let store = StrategyStore::open(&dir).expect("open store");
    let cache = StrategyCache::new(64);
    assert_eq!(store.warm(&cache, limit), limit);
    for (rank, &raw) in fps.iter().enumerate() {
        assert_eq!(
            cache.get(adaptive_dp::workload::Fingerprint(raw)).is_some(),
            rank < limit,
            "fingerprint {raw:#018x} at ascending rank {rank} (limit {limit})"
        );
    }

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn store_recovers_from_truncated_entry() {
    assert_recovers_from_corruption("truncated", |path| {
        let bytes = std::fs::read(path).expect("read entry");
        std::fs::write(path, &bytes[..bytes.len() / 2]).expect("truncate entry");
    });
}

#[test]
fn store_recovers_from_bit_flipped_payload() {
    assert_recovers_from_corruption("bitflip", |path| {
        let mut bytes = std::fs::read(path).expect("read entry");
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(path, bytes).expect("rewrite entry");
    });
}

#[test]
fn store_recovers_from_wrong_version_header() {
    assert_recovers_from_corruption("version", |path| {
        let mut bytes = std::fs::read(path).expect("read entry");
        // Bytes 8..12 hold the format version (little-endian u32, after the
        // 8-byte magic).
        let bumped = (PLAN_STORE_VERSION + 1).to_le_bytes();
        bytes[8..12].copy_from_slice(&bumped);
        std::fs::write(path, bytes).expect("rewrite entry");
    });
}

/// Panics on the first selection, then delegates to the default selector.
struct PanicOnceSelector {
    panicked: AtomicBool,
    inner: adaptive_dp::core::engine::EigenDesignSelector,
}

impl std::fmt::Debug for PanicOnceSelector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PanicOnceSelector").finish_non_exhaustive()
    }
}

impl StrategySelector for PanicOnceSelector {
    fn name(&self) -> String {
        "panic-once".into()
    }

    fn select(&self, ctx: &SelectionContext) -> adaptive_dp::core::Result<Strategy> {
        if !self.panicked.swap(true, Ordering::SeqCst) {
            // Pin the flight open long enough for every barrier-released
            // peer to join it as a waiter before the panic lands: the
            // poisoned-flight counter only moves when a *waiter* becomes
            // the retry leader, so an instant panic would race the waiters
            // to `begin` and flake under parallel-test CPU load.
            std::thread::sleep(std::time::Duration::from_millis(100));
            panic!("injected selector crash");
        }
        self.inner.select(ctx)
    }
}

/// The single-flight poisoning regression: a selection leader that panics
/// must not strand concurrent waiters — every surviving thread observes the
/// typed poison, retries, and answers.
#[test]
fn waiting_threads_recover_from_a_panicking_selection_leader() {
    const THREADS: usize = 6;
    let engine = Arc::new(
        Engine::builder()
            .privacy(PrivacyParams::paper_default())
            .selector(PanicOnceSelector {
                panicked: AtomicBool::new(false),
                inner: Default::default(),
            })
            .build()
            .expect("engine builds"),
    );
    let barrier = Arc::new(std::sync::Barrier::new(THREADS));
    let handles: Vec<_> = (0..THREADS)
        .map(|i| {
            let engine = engine.clone();
            let barrier = barrier.clone();
            std::thread::spawn(move || {
                let workload = AllRangeWorkload::new(Domain::one_dim(32));
                let data: Vec<f64> = (0..32).map(|c| 10.0 + c as f64).collect();
                barrier.wait();
                let mut rng = StdRng::seed_from_u64(i as u64);
                engine.answer(&workload, &data, &mut rng).map(|_| ())
            })
        })
        .collect();

    let mut ok = 0usize;
    let mut panicked = 0usize;
    for handle in handles {
        match handle.join() {
            Ok(Ok(())) => ok += 1,
            Ok(Err(e)) => panic!("no thread may see a mechanism error, got {e}"),
            Err(_) => panicked += 1,
        }
    }
    // Exactly the leader's thread dies of the injected panic; every waiter
    // recovers by re-running the (now healthy) selection.
    assert_eq!(panicked, 1, "only the panicking leader's thread may die");
    assert_eq!(ok, THREADS - 1, "every waiter must recover and answer");
    let stats = engine.stats();
    assert!(
        stats.poisoned_flights >= 1,
        "the engine must record the recovered poisoned flight, stats: {stats:?}"
    );
}

/// The cross-session accounting acceptance test: one principal, one ledger,
/// any number of sessions — the (ε, δ) budget admits the same total number
/// of answers whether one session spends it or two share it, and the
/// over-budget request fails with `BudgetExhausted`.
#[test]
fn sessions_sharing_a_ledger_jointly_exhaust_one_budget() {
    let workload = AllRangeWorkload::new(Domain::one_dim(24));
    let data: Vec<f64> = (0..24).map(|i| 5.0 + i as f64).collect();
    let engine = Arc::new(
        Engine::builder()
            .privacy(PrivacyParams::paper_default())
            .build()
            .expect("engine builds"),
    );
    let per_answer = engine.privacy();
    let budget = || PrivacyBudget::new(per_answer.epsilon * 4.5, (per_answer.delta * 4.5).min(0.5));

    // Baseline: a single session drains the budget alone.
    let solo = UserLedger::new("dana", budget());
    let mut session = engine.user_session(&solo);
    let mut rng = StdRng::seed_from_u64(1);
    let mut solo_answers = 0usize;
    loop {
        match session.answer(&workload, &data, &mut rng) {
            Ok(_) => solo_answers += 1,
            Err(MechanismError::BudgetExhausted { .. }) => break,
            Err(e) => panic!("unexpected error draining solo budget: {e}"),
        }
        assert!(solo_answers < 100, "budget never exhausted");
    }
    assert_eq!(solo_answers, 4, "the budget admits exactly four answers");

    // Two concurrent sessions of the same principal share one ledger: their
    // joint total equals the single-session count — sharing can never mint
    // extra budget.
    let shared = UserLedger::new("dana-2", budget());
    let mut a = engine.user_session(&shared);
    let mut b = engine.user_session(&shared);
    let mut joint_answers = 0usize;
    let mut rng = StdRng::seed_from_u64(2);
    for round in 0..4 {
        let session = if round % 2 == 0 { &mut a } else { &mut b };
        session
            .answer(&workload, &data, &mut rng)
            .expect("within budget");
        joint_answers += 1;
    }
    assert_eq!(joint_answers, solo_answers);
    // The budget is spent: *both* sessions now get the typed exhaustion.
    for session in [&mut a, &mut b] {
        match session.answer(&workload, &data, &mut rng) {
            Err(MechanismError::BudgetExhausted { .. }) => {}
            other => panic!("expected BudgetExhausted, got {other:?}"),
        }
    }
    assert!(shared.remaining().epsilon < per_answer.epsilon);
}

/// The serve tier composes with everything above: a `ServeEngine` over a
/// store-backed engine answers through futures, and a second serve tier over
/// a fresh engine on the same directory starts warm.
#[test]
fn serve_tier_over_persistent_store_restarts_warm() {
    use adaptive_dp::serve::{block_on, ServeEngine};

    let dir = scratch_dir("serve-store");
    let workload = Arc::new(AllRangeWorkload::new(Domain::one_dim(40)));
    let data: Vec<f64> = (0..40).map(|i| 30.0 + i as f64).collect();

    let first = ServeEngine::builder(Arc::new(store_engine(&dir))).build();
    let cold = block_on(first.answer(workload.clone(), data.clone(), 11)).expect("cold serve");
    assert_eq!(first.engine().stats().selections, 1);
    assert_eq!(first.engine().stats().store_writes, 1);
    drop(first);

    let second = ServeEngine::builder(Arc::new(store_engine(&dir))).build();
    let warm = block_on(second.answer(workload, data, 11)).expect("warm serve");
    assert_eq!(
        second.engine().stats().selections,
        0,
        "the restarted tier serves from the persisted selection"
    );
    for (a, b) in cold.answers.iter().zip(&warm.answers) {
        assert_eq!(a.to_bits(), b.to_bits());
    }

    let _ = std::fs::remove_dir_all(&dir);
}

/// The serve tier round-trips `SelectionPlan::LowRank` through the unified
/// store: a low-rank engine's futures key on the mixed plan fingerprint,
/// the plan persists as a `.mmplan` entry, and a restarted serve tier over
/// the same directory answers warm and bit-identically without selecting.
#[test]
fn serve_tier_round_trips_low_rank_plans_through_the_store() {
    use adaptive_dp::core::engine::PlanKind;
    use adaptive_dp::serve::{block_on, ServeEngine};

    let dir = scratch_dir("serve-lowrank");
    let low_rank_engine = |dir: &Path| {
        Engine::builder()
            .privacy(PrivacyParams::paper_default())
            .strategy_store(dir)
            .low_rank(16)
            .build()
            .expect("low-rank engine with store builds")
    };
    let workload = Arc::new(AllRangeWorkload::new(Domain::one_dim(40)));
    let data: Vec<f64> = (0..40).map(|i| 30.0 + i as f64).collect();

    let first = ServeEngine::builder(Arc::new(low_rank_engine(&dir))).build();
    let cold = block_on(first.answer(workload.clone(), data.clone(), 21)).expect("cold serve");
    assert_eq!(first.engine().stats().low_rank_selections, 1);
    assert_eq!(first.engine().stats().store_writes, 1);
    let (plan, _, _) = first.engine().select_plan_for(&*workload).expect("plan");
    assert_eq!(plan.kind(), PlanKind::LowRank);
    drop(first);

    let second = ServeEngine::builder(Arc::new(low_rank_engine(&dir))).build();
    let warm = block_on(second.answer(workload.clone(), data, 21)).expect("warm serve");
    assert_eq!(
        second.engine().stats().selections,
        0,
        "the restarted tier serves the persisted low-rank plan"
    );
    let (plan, _, _) = second
        .engine()
        .select_plan_for(&*workload)
        .expect("warm plan");
    assert_eq!(plan.kind(), PlanKind::LowRank);
    for (a, b) in cold.answers.iter().zip(&warm.answers) {
        assert_eq!(a.to_bits(), b.to_bits());
    }

    let _ = std::fs::remove_dir_all(&dir);
}

/// Blocks every selection on a shared gate after signalling entry,
/// optionally panicking on the first gated call — the driver for the
/// stampede tests, which need a worker observably *held* mid-selection.
struct GatedStampedeSelector {
    release: Arc<(std::sync::Mutex<bool>, std::sync::Condvar)>,
    started: Arc<(std::sync::Mutex<usize>, std::sync::Condvar)>,
    panic_first: bool,
    panicked: AtomicBool,
    inner: adaptive_dp::core::engine::EigenDesignSelector,
}

impl std::fmt::Debug for GatedStampedeSelector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GatedStampedeSelector")
            .finish_non_exhaustive()
    }
}

impl StrategySelector for GatedStampedeSelector {
    fn name(&self) -> String {
        "gated-stampede".into()
    }

    fn select(&self, ctx: &SelectionContext) -> adaptive_dp::core::Result<Strategy> {
        {
            let (count, cv) = &*self.started;
            *count.lock().unwrap() += 1;
            cv.notify_all();
        }
        {
            let (open, cv) = &*self.release;
            let mut open = open.lock().unwrap();
            while !*open {
                open = cv.wait(open).unwrap();
            }
        }
        if self.panic_first && !self.panicked.swap(true, Ordering::SeqCst) {
            panic!("injected stampede crash");
        }
        self.inner.select(ctx)
    }
}

/// A cold-start stampede of distinct workloads against one worker and a
/// bounded queue: with the worker observably held, admission is exact —
/// queue-capacity jobs queue, every further request sheds typed — and the
/// shed counter plus the health snapshot agree with the arithmetic.
#[test]
fn cold_start_stampede_sheds_exactly_the_queue_overflow() {
    use adaptive_dp::serve::{block_on, ServeEngine, ServeError};

    const STAMPEDE: usize = 7;
    const QUEUE: usize = 2;
    let release = Arc::new((std::sync::Mutex::new(false), std::sync::Condvar::new()));
    let started = Arc::new((std::sync::Mutex::new(0usize), std::sync::Condvar::new()));
    let engine = Arc::new(
        Engine::builder()
            .privacy(PrivacyParams::paper_default())
            .selector(GatedStampedeSelector {
                release: release.clone(),
                started: started.clone(),
                panic_first: false,
                panicked: AtomicBool::new(false),
                inner: Default::default(),
            })
            .build()
            .expect("engine builds"),
    );
    let serve = Arc::new(
        ServeEngine::builder(engine.clone())
            .workers(1)
            .queue_capacity(QUEUE)
            .build(),
    );

    // Occupy the only worker and wait until its selection has *started*, so
    // the queue arithmetic below is deterministic: nothing can drain.
    let holder = {
        let serve = serve.clone();
        std::thread::spawn(move || {
            let w = Arc::new(AllRangeWorkload::new(Domain::one_dim(8)));
            let x: Vec<f64> = (0..8).map(|i| 1.0 + i as f64).collect();
            block_on(serve.answer(w, x, 0)).map(|_| ())
        })
    };
    {
        let (count, cv) = &*started;
        let mut count = count.lock().unwrap();
        while *count == 0 {
            count = cv.wait(count).unwrap();
        }
    }

    // Stampede: seven more *distinct* cold workloads.  Exactly QUEUE of
    // them can be admitted (the worker is held); the rest shed typed.
    let stampeders: Vec<_> = (0..STAMPEDE)
        .map(|i| {
            let serve = serve.clone();
            std::thread::spawn(move || {
                let n = 9 + i;
                let w = Arc::new(AllRangeWorkload::new(Domain::one_dim(n)));
                let x: Vec<f64> = (0..n).map(|c| 1.0 + c as f64).collect();
                block_on(serve.answer(w, x, i as u64)).map(|_| ())
            })
        })
        .collect();

    // Every stampeder either parks (admitted) or resolves Overloaded; the
    // exact split is visible in the stats and the health snapshot.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    while serve.stats().shed < (STAMPEDE - QUEUE) as u64 && std::time::Instant::now() < deadline {
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    let health = serve.health();
    assert_eq!(health.queue_depth, QUEUE, "held worker: queue exactly full");
    assert_eq!(
        health.pending_selections,
        QUEUE + 1,
        "the held flight plus every queued flight is pending"
    );
    assert_eq!(health.shed, (STAMPEDE - QUEUE) as u64);

    // Open the gate: the held request and both admitted stampeders resolve.
    {
        let (open, cv) = &*release;
        *open.lock().unwrap() = true;
        cv.notify_all();
    }
    assert!(holder.join().expect("holder thread").is_ok());
    let mut ok = 0usize;
    let mut shed = 0usize;
    for handle in stampeders {
        match handle.join().expect("stampeder thread") {
            Ok(()) => ok += 1,
            Err(ServeError::Overloaded { capacity }) => {
                assert_eq!(capacity, QUEUE);
                shed += 1;
            }
            Err(other) => panic!("stampeders may only shed, got {other}"),
        }
    }
    assert_eq!(ok, QUEUE, "exactly the admitted stampeders complete");
    assert_eq!(shed, STAMPEDE - QUEUE);
    let stats = serve.stats();
    assert_eq!(stats.completed, (QUEUE + 1) as u64);
    assert_eq!(stats.shed, (STAMPEDE - QUEUE) as u64);
    assert_eq!(stats.selection_jobs, (QUEUE + 1) as u64);
    assert_eq!(engine.stats().selections, (QUEUE + 1) as u64);
    let health = serve.health();
    assert_eq!(health.queue_depth, 0, "stampede fully drained");
    assert_eq!(health.pending_selections, 0);
}

/// A stampede onto *one* cold workload whose selection leader panics: every
/// piled-on waiter observes the typed poison (no hangs, no partial
/// answers), the failure is counted, and the next request recovers the
/// flight — with the engine recording the poisoned-flight retry.
#[test]
fn poisoned_flight_stampede_fails_typed_and_recovers() {
    use adaptive_dp::serve::{block_on, ServeEngine, ServeError};
    use std::future::Future;
    use std::pin::Pin;

    const WAITERS: usize = 6;
    let release = Arc::new((std::sync::Mutex::new(false), std::sync::Condvar::new()));
    let started = Arc::new((std::sync::Mutex::new(0usize), std::sync::Condvar::new()));
    let engine = Arc::new(
        Engine::builder()
            .privacy(PrivacyParams::paper_default())
            .selector(GatedStampedeSelector {
                release: release.clone(),
                started: started.clone(),
                panic_first: true,
                panicked: AtomicBool::new(false),
                inner: Default::default(),
            })
            .build()
            .expect("engine builds"),
    );
    let serve = ServeEngine::builder(engine.clone()).workers(1).build();
    let w = Arc::new(AllRangeWorkload::new(Domain::one_dim(20)));
    let x: Vec<f64> = (0..20).map(|i| 2.0 + i as f64).collect();

    // First poll of each future registers it on the one shared flight while
    // the leader is observably held inside the (about-to-panic) selector.
    let mut futures: Vec<_> = (0..WAITERS)
        .map(|s| serve.answer(w.clone(), x.clone(), s as u64))
        .collect();
    let waker = std::task::Waker::noop();
    let mut cx = std::task::Context::from_waker(waker);
    for fut in &mut futures {
        assert!(Pin::new(fut).poll(&mut cx).is_pending());
    }
    {
        let (count, cv) = &*started;
        let mut count = count.lock().unwrap();
        while *count == 0 {
            count = cv.wait(count).unwrap();
        }
    }
    assert_eq!(
        serve.stats().selection_jobs,
        1,
        "one flight for all waiters"
    );
    assert_eq!(serve.health().pending_selections, 1);

    // A direct engine caller joins the *engine-level* flight the serve job
    // leads: when the leader panics, this waiter recovers the poison as the
    // next leader, which is what `poisoned_flights` counts.  The gate keeps
    // the flight pinned in-flight, so the generous sleep below is only
    // about letting the thread reach its wait.
    let direct = {
        let engine = engine.clone();
        let x = x.clone();
        std::thread::spawn(move || {
            let w = AllRangeWorkload::new(Domain::one_dim(20));
            let mut rng = StdRng::seed_from_u64(7);
            engine.answer(&w, &x, &mut rng).map(|_| ())
        })
    };
    std::thread::sleep(std::time::Duration::from_millis(200));

    // Open the gate: the selector panics, poisoning every waiter at once.
    {
        let (open, cv) = &*release;
        *open.lock().unwrap() = true;
        cv.notify_all();
    }
    for fut in futures {
        match block_on(fut) {
            Err(ServeError::Mechanism(e)) => {
                assert!(
                    matches!(&*e, MechanismError::PoisonedSelection(_)),
                    "expected typed poison, got {e}"
                );
                assert!(e.to_string().contains("injected stampede crash"));
            }
            other => panic!("every stampeded waiter must observe the poison, got {other:?}"),
        }
    }
    let stats = serve.stats();
    assert_eq!(stats.failed, WAITERS as u64);
    assert_eq!(stats.completed, 0);

    // The direct waiter recovered the poison, became the retry leader, and
    // answered — the engine recorded the recovered flight, and the serve
    // tier's health snapshot surfaces it.
    assert!(direct.join().expect("direct waiter thread").is_ok());
    assert_eq!(
        engine.stats().poisoned_flights,
        1,
        "the retry leader must record the poisoned flight it recovered"
    );
    assert_eq!(serve.health().poisoned_flights, 1);

    // The poison is typed *and* transient: a served retry resolves (warm —
    // the direct waiter's recovery already published the plan).
    let retry = block_on(serve.answer(w, x, 99));
    assert!(
        retry.is_ok(),
        "poisoned flight must be retryable: {retry:?}"
    );
    assert_eq!(serve.stats().completed, 1);
}
