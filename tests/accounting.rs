//! Integration tests for the pluggable privacy-accounting subsystem:
//! accountant properties (monotone dominance, pure-DP rejection, composed
//! batch affordability) and the engine-level budget stretch — an RDP session
//! answers strictly more queries than a sequential one at the same total
//! (ε, δ) budget and per-answer noise scale.

use adaptive_dp::core::accounting::{
    Accountant, AccountantFactory, AdvancedCompositionAccountant, AdvancedCompositionAccounting,
    MechanismEvent, RdpAccountant, RdpAccounting, SequentialAccountant, SequentialAccounting,
};
use adaptive_dp::core::engine::{Engine, PrivacyBudget};
use adaptive_dp::core::{GaussianBackend, LaplaceBackend, MechanismError, PrivacyParams};
use adaptive_dp::linalg::approx_eq;
use adaptive_dp::workload::IdentityWorkload;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A mixed stream of mechanism events whose sequential δ-sum stays within
/// every budget used below, so the sequential claim is valid throughout and
/// the accountants are comparable.
fn mixed_event_stream() -> Vec<MechanismEvent> {
    let mut events = Vec::new();
    for i in 0..40 {
        let p = PrivacyParams::new(0.1 + 0.01 * (i % 5) as f64, 1e-6);
        events.push(MechanismEvent::gaussian(
            p,
            p.gaussian_unit_sigma() * 2.0,
            2.0,
        ));
        let q = PrivacyParams::pure(0.05 + 0.005 * (i % 3) as f64);
        events.push(MechanismEvent::laplace(q, q.laplace_unit_scale(), 1.0));
        if i % 7 == 0 {
            events.push(MechanismEvent::declared(PrivacyParams::new(0.02, 1e-7)));
        }
    }
    events
}

/// Monotone dominance: at every prefix of the same event stream, the
/// advanced-composition and RDP accountants never report more ε-spend than
/// the sequential accountant (they may be — and eventually are — strictly
/// tighter).  A sound accountant is never looser than basic composition.
#[test]
fn advanced_and_rdp_never_report_more_spend_than_sequential() {
    let budget = PrivacyBudget::new(1e6, 0.5);
    let mut sequential = SequentialAccountant::new(budget);
    let mut advanced = AdvancedCompositionAccountant::new(budget);
    let mut rdp = RdpAccountant::new(budget);
    let mut tight_somewhere = false;
    for event in mixed_event_stream() {
        sequential.charge_many(&event, 1).unwrap();
        advanced.charge_many(&event, 1).unwrap();
        rdp.charge_many(&event, 1).unwrap();
        let seq = sequential.spent().epsilon;
        let adv = advanced.spent().epsilon;
        let ren = rdp.spent().epsilon;
        assert!(
            adv <= seq + 1e-9,
            "advanced spend {adv} exceeds sequential {seq}"
        );
        assert!(
            ren <= seq + 1e-9,
            "rdp spend {ren} exceeds sequential {seq}"
        );
        if ren < 0.9 * seq {
            tight_somewhere = true;
        }
    }
    assert!(
        tight_somewhere,
        "rdp accounting should become strictly tighter on a long stream"
    );
    // All three accountants saw the same events.
    assert_eq!(sequential.events().len(), advanced.events().len());
    assert_eq!(sequential.events().len(), rdp.events().len());
}

/// δ = 0 (pure-DP) budgets reject any δ > 0 charge under every accountant.
#[test]
fn pure_dp_budgets_reject_positive_delta_under_every_accountant() {
    let pure = PrivacyBudget::pure(100.0);
    let approximate_charge = {
        let p = PrivacyParams::new(0.1, 1e-8);
        MechanismEvent::gaussian(p, p.gaussian_unit_sigma(), 1.0)
    };
    let declared_charge = MechanismEvent::declared(PrivacyParams::new(0.1, 1e-12));
    let pure_charge = {
        let p = PrivacyParams::pure(0.1);
        MechanismEvent::laplace(p, p.laplace_unit_scale(), 1.0)
    };
    let factories: [Box<dyn AccountantFactory>; 3] = [
        Box::new(SequentialAccounting),
        Box::new(AdvancedCompositionAccounting),
        Box::new(RdpAccounting::default()),
    ];
    for factory in factories {
        let mut acct = factory.accountant(pure);
        for rejected in [&approximate_charge, &declared_charge] {
            let err = acct.check_many(rejected, 1).unwrap_err();
            assert!(
                matches!(err, MechanismError::BudgetExhausted { .. }),
                "{}: δ > 0 must be rejected against a pure budget",
                factory.name()
            );
        }
        // A pure charge is fine under every accountant.
        acct.charge_many(&pure_charge, 3).unwrap();
        assert_eq!(acct.spent().delta, 0.0, "{}", factory.name());
        assert!(acct.spent().epsilon > 0.0);
    }
}

/// The default session is byte-compatible with an explicitly sequential one:
/// same answers bit for bit, same ledger arithmetic.
#[test]
fn default_sessions_are_byte_compatible_with_explicit_sequential() {
    let p = PrivacyParams::paper_default();
    let engine = Engine::builder().privacy(p).build().unwrap();
    assert_eq!(engine.accountant_factory().name(), "sequential");
    let w = IdentityWorkload::new(16);
    let x: Vec<f64> = (0..16).map(|i| 20.0 + i as f64).collect();
    let budget = PrivacyBudget::new(2.0, 1e-3);

    let mut default_session = engine.session(budget);
    let mut explicit_session =
        engine.session_with_accountant(Box::new(SequentialAccountant::new(budget)));

    let mut rng_a = StdRng::seed_from_u64(99);
    let mut rng_b = StdRng::seed_from_u64(99);
    for _ in 0..4 {
        let a = default_session.answer(&w, &x, &mut rng_a).unwrap();
        let b = explicit_session.answer(&w, &x, &mut rng_b).unwrap();
        for (u, v) in a.answers.iter().zip(b.answers.iter()) {
            assert_eq!(u.to_bits(), v.to_bits());
        }
        assert_eq!(
            default_session.ledger().spent().epsilon.to_bits(),
            explicit_session.ledger().spent().epsilon.to_bits()
        );
    }
    assert!(default_session.answer(&w, &x, &mut rng_a).is_err());
    assert!(explicit_session.answer(&w, &x, &mut rng_b).is_err());
}

/// Acceptance criterion: at the same total (ε, δ) budget and the same
/// per-answer Gaussian noise scale, a session accounted with RDP answers
/// strictly more queries than one accounted sequentially.
#[test]
fn rdp_session_answers_strictly_more_queries_at_the_same_budget() {
    let per_answer = PrivacyParams::new(0.5, 1e-4); // the paper's setting
    let budget = PrivacyBudget::new(4.0, 1e-3);
    let engine = Engine::builder()
        .privacy(per_answer)
        .backend(GaussianBackend)
        .build()
        .unwrap();
    let w = IdentityWorkload::new(8);
    let x = vec![10.0; 8];

    let count_answers = |mut session: adaptive_dp::core::Session<'_>, seed: u64| {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut n = 0usize;
        while n < 10_000 {
            match session.answer(&w, &x, &mut rng) {
                Ok(ans) => {
                    // Same per-answer noise scale in every session: the
                    // recorded event carries the actual σ of the release.
                    let event = session.ledger().events()[n];
                    assert!(approx_eq(
                        event.noise_scale(),
                        per_answer.gaussian_sigma(1.0),
                        1e-9
                    ));
                    assert_eq!(ans.answers.len(), 8);
                    n += 1;
                }
                Err(MechanismError::BudgetExhausted { .. }) => break,
                Err(other) => panic!("unexpected error {other}"),
            }
        }
        n
    };

    let sequential = count_answers(engine.session(budget), 1);
    let rdp = count_answers(
        engine.session_with_accountant(Box::new(RdpAccountant::new(budget))),
        2,
    );
    // Sequential composition affords ⌊4.0 / 0.5⌋ = 8 answers (ε-bound).
    assert_eq!(sequential, 8);
    assert!(
        rdp > sequential,
        "rdp session answered {rdp}, sequential {sequential}"
    );
    // The stretch is substantial at the paper's parameters, not marginal.
    assert!(rdp >= 4 * sequential, "rdp answered only {rdp}");
}

/// Batch affordability is the accountant's *composed* post-charge spend: an
/// all-or-nothing batch that per-charge linearity must reject is admitted
/// under RDP, and an unaffordable batch still spends nothing.
#[test]
fn batch_affordability_is_composed_under_rdp() {
    let per_answer = PrivacyParams::new(0.5, 1e-4);
    let budget = PrivacyBudget::new(4.0, 1e-3);
    let engine = Engine::builder().privacy(per_answer).build().unwrap();
    let w = IdentityWorkload::new(8);
    let xs: Vec<Vec<f64>> = (0..24).map(|k| vec![k as f64; 8]).collect();
    let mut rng = StdRng::seed_from_u64(5);

    // 24 vectors × ε = 0.5 ≫ ε budget 4.0: sequential rejects the batch...
    let mut sequential = engine.session(budget);
    assert!(matches!(
        sequential.answer_batch(&w, &xs, &mut rng).unwrap_err(),
        MechanismError::BudgetExhausted { .. }
    ));
    assert_eq!(sequential.ledger().charges().len(), 0, "spends nothing");

    // ...while the composed 24-fold RDP spend fits, and charges per vector.
    let mut rdp = engine.session_with_accountant(Box::new(RdpAccountant::new(budget)));
    let answers = rdp.answer_batch(&w, &xs, &mut rng).unwrap();
    assert_eq!(answers.len(), 24);
    assert_eq!(rdp.ledger().charges().len(), 24);
    assert!(rdp.ledger().spent().epsilon <= budget.epsilon);

    // An absurdly large batch still fails closed without spending anything
    // beyond the 24 recorded charges.
    let huge: Vec<Vec<f64>> = (0..5_000).map(|k| vec![k as f64; 8]).collect();
    assert!(rdp.answer_batch(&w, &huge, &mut rng).is_err());
    assert_eq!(rdp.ledger().charges().len(), 24);
}

/// The engine-level accountant knob: an engine built with
/// `.accountant(RdpAccounting)` hands every session the RDP policy, and
/// owned sessions carry it across threads.
#[test]
fn engine_accountant_knob_applies_to_all_sessions() {
    let per_answer = PrivacyParams::new(0.5, 1e-4);
    let budget = PrivacyBudget::new(4.0, 1e-3);
    let engine = std::sync::Arc::new(
        Engine::builder()
            .privacy(per_answer)
            .accountant(RdpAccounting::default())
            .build()
            .unwrap(),
    );
    assert_eq!(engine.accountant_factory().name(), "rdp");
    let w = IdentityWorkload::new(8);

    let mut owned = engine.owned_session(budget);
    let handle = std::thread::spawn(move || {
        let mut rng = StdRng::seed_from_u64(7);
        let x = vec![3.0; 8];
        // More answers than sequential composition could ever afford.
        for _ in 0..16 {
            owned.answer(&w, &x, &mut rng).unwrap();
        }
        owned
    });
    let owned = handle.join().unwrap();
    assert_eq!(owned.ledger().charges().len(), 16);
    assert_eq!(owned.ledger().accountant().name(), "rdp");
    assert!(owned.ledger().spent().epsilon <= budget.epsilon);
    assert!(
        16.0 * per_answer.epsilon > budget.epsilon,
        "beyond sequential"
    );
}

/// Advanced composition pays off in its own regime — many answers at small
/// per-answer ε — and degrades gracefully (to sequential behavior) at the
/// paper's larger per-answer ε.
#[test]
fn advanced_composition_wins_at_small_epsilon() {
    // 2 000 declared releases at ε = 0.01, δ = 0: sequential needs ε = 20;
    // advanced composition fits them into ε = 4 with room to spare.
    let budget = PrivacyBudget::new(4.0, 1e-3);
    let mut advanced = AdvancedCompositionAccountant::new(budget);
    let event = MechanismEvent::declared(PrivacyParams::new(0.01, 0.0));
    advanced.charge_many(&event, 2_000).unwrap();
    assert!(advanced.spent().epsilon < budget.epsilon);

    let mut sequential = SequentialAccountant::new(budget);
    let err = sequential.charge_many(&event, 2_000).unwrap_err();
    assert!(matches!(err, MechanismError::BudgetExhausted { .. }));
}

/// A pure-DP Laplace engine works under every accountant policy (the RDP
/// accountant degrades to sequential composition when the budget's δ is 0).
#[test]
fn laplace_engine_serves_pure_budgets_under_every_policy() {
    let per_answer = PrivacyParams::pure(0.5);
    let budget = PrivacyBudget::pure(1.0);
    for factory in [
        Box::new(SequentialAccounting) as Box<dyn AccountantFactory>,
        Box::new(RdpAccounting::default()),
    ] {
        let engine = Engine::builder()
            .privacy(per_answer)
            .backend(LaplaceBackend)
            .accountant_arc(std::sync::Arc::from(factory))
            .build()
            .unwrap();
        let w = IdentityWorkload::new(8);
        let x = vec![4.0; 8];
        let mut rng = StdRng::seed_from_u64(11);
        let mut session = engine.session(budget);
        session.answer(&w, &x, &mut rng).unwrap();
        session.answer(&w, &x, &mut rng).unwrap();
        assert!(session.answer(&w, &x, &mut rng).is_err(), "ε exhausted");
        assert_eq!(session.ledger().spent().delta, 0.0);
    }
}
