//! Property-style tests on the core data structures and invariants of the
//! mechanism.
//!
//! The offline build has no `proptest`, so each property is checked over a
//! deterministic family of seeded random cases (the case counts match the
//! `ProptestConfig` this file used previously).

use adaptive_dp::core::bounds::{rms_error_bound, workload_eigenvalues};
use adaptive_dp::core::error::rms_workload_error;
use adaptive_dp::core::{eigen_design, EigenDesignOptions, PrivacyParams};
use adaptive_dp::linalg::decomp::{Cholesky, SymmetricEigen};
use adaptive_dp::linalg::{approx_eq, ops, Matrix};
use adaptive_dp::opt::{solve_log_gd, GdOptions, WeightingProblem};
use adaptive_dp::strategies::identity::identity_strategy;
use adaptive_dp::workload::query::LinearQuery;
use adaptive_dp::workload::range::{AllRangeWorkload, RandomRangeWorkload};
use adaptive_dp::workload::transform::{seeded_permutation, PermutedWorkload};
use adaptive_dp::workload::{Domain, ExplicitWorkload, Workload};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const CASES: u64 = 32;

fn random_matrix(rng: &mut StdRng, rows: usize, cols: usize, scale: f64) -> Matrix {
    Matrix::from_fn(rows, cols, |_, _| rng.gen_range(-scale..scale))
}

fn random_vec(rng: &mut StdRng, len: usize, lo: f64, hi: f64) -> Vec<f64> {
    (0..len).map(|_| rng.gen_range(lo..hi)).collect()
}

/// (AB)ᵀ = BᵀAᵀ for arbitrary square matrices.
#[test]
fn matmul_transpose_identity() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = random_matrix(&mut rng, 5, 5, 5.0);
        let b = random_matrix(&mut rng, 5, 5, 5.0);
        let ab_t = ops::matmul(&a, &b).unwrap().transpose();
        let bt_at = ops::matmul(&b.transpose(), &a.transpose()).unwrap();
        for i in 0..5 {
            for j in 0..5 {
                assert!(approx_eq(ab_t[(i, j)], bt_at[(i, j)], 1e-8));
            }
        }
    }
}

/// The gram matrix AᵀA is always symmetric positive semidefinite.
#[test]
fn gram_is_psd() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(100 + seed);
        let a = random_matrix(&mut rng, 6, 6, 5.0);
        let g = ops::gram(&a);
        assert!(g.is_symmetric(1e-9));
        let eig = SymmetricEigen::new(&g).unwrap();
        for &l in eig.eigenvalues() {
            assert!(l > -1e-7, "negative eigenvalue {l}");
        }
    }
}

/// Eigendecomposition reconstructs the matrix and preserves the trace.
#[test]
fn eigen_reconstruction() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(200 + seed);
        let a = random_matrix(&mut rng, 6, 6, 5.0);
        let g = ops::gram(&a);
        let eig = SymmetricEigen::new(&g).unwrap();
        let sum: f64 = eig.eigenvalues().iter().sum();
        assert!(approx_eq(sum, g.trace(), 1e-6 * (1.0 + g.trace().abs())));
        let rec = eig.reconstruct();
        for i in 0..6 {
            for j in 0..6 {
                assert!(approx_eq(
                    rec[(i, j)],
                    g[(i, j)],
                    1e-6 * (1.0 + g.max_abs())
                ));
            }
        }
    }
}

/// Cholesky solves reproduce the right-hand side.
#[test]
fn cholesky_solve_roundtrip() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(300 + seed);
        let a = random_matrix(&mut rng, 5, 5, 5.0);
        let rhs = random_vec(&mut rng, 5, -10.0, 10.0);
        let mut g = ops::gram(&a);
        for i in 0..5 {
            g[(i, i)] += 5.0;
        }
        let ch = Cholesky::new(&g).unwrap();
        let x = ch.solve_vec(&rhs).unwrap();
        let back = g.matvec(&x).unwrap();
        for (b, r) in back.iter().zip(rhs.iter()) {
            assert!(approx_eq(*b, *r, 1e-6));
        }
    }
}

/// A linear query evaluates identically in sparse and dense form.
#[test]
fn query_sparse_dense_agree() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(400 + seed);
        let coeffs = random_vec(&mut rng, 12, -3.0, 3.0);
        let x = random_vec(&mut rng, 12, 0.0, 50.0);
        let q = LinearQuery::from_dense(&coeffs);
        let dense: f64 = coeffs.iter().zip(x.iter()).map(|(c, v)| c * v).sum();
        assert!(approx_eq(q.evaluate(&x), dense, 1e-9));
        assert!(q.nnz() <= 12);
    }
}

/// Permuting cell conditions never changes the workload's eigenvalues, and
/// therefore never changes the lower bound or the eigen-design error.
#[test]
fn permutation_preserves_spectrum() {
    for case in 0..CASES {
        let seed = case * 137 + 5; // spread over [0, 5000)
        let n = 12usize;
        let w = AllRangeWorkload::new(Domain::one_dim(n));
        let permuted = PermutedWorkload::new(
            AllRangeWorkload::new(Domain::one_dim(n)),
            seeded_permutation(n, seed),
        );
        let e0 = workload_eigenvalues(&w.gram()).unwrap();
        let e1 = workload_eigenvalues(&permuted.gram()).unwrap();
        for (a, b) in e0.iter().zip(e1.iter()) {
            assert!(approx_eq(*a, *b, 1e-7 * (1.0 + a.abs())));
        }
    }
}

/// The weighting solver always returns a feasible point that is at least as
/// good as the Theorem-2 initial weighting.
#[test]
fn weighting_solver_feasible_and_improving() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(500 + seed);
        let k = rng.gen_range(2usize..10);
        let costs = random_vec(&mut rng, k, 0.0, 20.0);
        let design = random_matrix(&mut rng, k, k + 2, 1.0);
        let problem = match WeightingProblem::from_design_queries(&design, costs) {
            Ok(p) => p,
            Err(_) => continue, // e.g. a positive-cost query with all-zero coefficients
        };
        let sol = solve_log_gd(&problem, &GdOptions::fast()).unwrap();
        assert!(problem.is_feasible(&sol.u, 1e-6));
        let init = problem.initial_point();
        assert!(sol.objective <= problem.objective(&init) * (1.0 + 1e-6));
    }
}

/// The eigen-design error never beats the Theorem-2 lower bound and never
/// loses to the identity strategy by more than the identity's own error.
#[test]
fn eigen_design_respects_bound() {
    for seed in 0..CASES {
        let n = 10usize;
        let domain = Domain::one_dim(n);
        let mut rng = StdRng::seed_from_u64(600 + seed);
        let w = RandomRangeWorkload::sample(domain, 15, &mut rng);
        let g = w.gram();
        let m = w.query_count();
        let p = PrivacyParams::paper_default();
        let eigen = eigen_design(&g, &EigenDesignOptions::fast())
            .unwrap()
            .strategy;
        let err = rms_workload_error(&g, m, &eigen, &p).unwrap();
        let bound = rms_error_bound(&workload_eigenvalues(&g).unwrap(), m, &p);
        assert!(err >= bound * (1.0 - 1e-6), "err {err} below bound {bound}");
        let id_err = rms_workload_error(&g, m, &identity_strategy(n), &p).unwrap();
        assert!(
            err <= id_err * 1.01,
            "eigen {err} should not lose to identity {id_err}"
        );
    }
}

/// The Low-Rank Mechanism's rank knob is monotone: on a fixed workload, the
/// predicted RMS error (the Prop. 4 noise error of the subspace mechanism
/// plus the dropped-mass truncation-bias proxy) never increases as the
/// requested rank grows — more retained spectrum can only help.
#[test]
fn low_rank_predicted_error_is_monotone_in_rank() {
    use adaptive_dp::core::Engine;

    let p = PrivacyParams::paper_default();
    let ec = p.gaussian_error_constant();
    let n = 32usize;
    for case in 0..8u64 {
        let mut rng = StdRng::seed_from_u64(800 + case);
        let w = RandomRangeWorkload::sample(Domain::one_dim(n), 40, &mut rng);
        let m = w.query_count();
        let mut prev = f64::INFINITY;
        for rank in [2usize, 4, 8, 16, 24] {
            let engine = Engine::builder()
                .privacy(PrivacyParams::paper_default())
                .low_rank(rank)
                .build()
                .unwrap();
            let (plan, _, _) = engine.select_plan_for(&w).unwrap();
            let lr = plan
                .as_low_rank()
                .expect("rank < n must yield a low-rank plan");
            let sens = lr.selection().strategy().l2_sensitivity();
            // A data scale far above the noise floor, so the truncation bias
            // dominates wherever mass is dropped.
            let err = lr.predicted_rms_error(m, ec, sens, 1e4).unwrap();
            assert!(
                err <= prev * (1.0 + 1e-6),
                "predicted error rose from {prev} to {err} at rank {rank} (case {case})"
            );
            prev = err;
        }
    }
}

/// Scaling every query of a workload by a constant scales the error of any
/// strategy by the same constant (error linearity, Sec. 3.4).
#[test]
fn error_scales_linearly_with_query_norm() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(700 + seed);
        let scale = rng.gen_range(0.5f64..4.0);
        let w = ExplicitWorkload::new(
            "pair",
            vec![LinearQuery::range_1d(8, 0, 5), LinearQuery::cell(8, 3)],
        );
        let scaled = ExplicitWorkload::new(
            "scaled",
            vec![
                LinearQuery::range_1d(8, 0, 5).scaled(scale),
                LinearQuery::cell(8, 3).scaled(scale),
            ],
        );
        let p = PrivacyParams::paper_default();
        let s = identity_strategy(8);
        let e1 = rms_workload_error(&w.gram(), 2, &s, &p).unwrap();
        let e2 = rms_workload_error(&scaled.gram(), 2, &s, &p).unwrap();
        assert!(approx_eq(e2, scale * e1, 1e-7 * (1.0 + e2)));
    }
}
