//! Integration tests for the `Engine`/`Session` API: pluggable selection,
//! strategy caching, noise backends and privacy-budget accounting, exercised
//! through the `adaptive-dp` facade exactly as an application would.

use adaptive_dp::core::engine::{
    DesignSetSelector, Engine, EngineAnswer, FixedStrategySelector, PrivacyBudget, PureDpSelector,
};
use adaptive_dp::core::error::{rms_workload_error, rms_workload_error_l1};
use adaptive_dp::core::OwnedSession;
use adaptive_dp::core::{GaussianBackend, LaplaceBackend, MechanismError, PrivacyParams};
use adaptive_dp::linalg::approx_eq;
use adaptive_dp::strategies::hierarchical::binary_hierarchical_1d;
use adaptive_dp::workload::fingerprint::workload_fingerprint;
use adaptive_dp::workload::range::AllRangeWorkload;
use adaptive_dp::workload::{Domain, Workload};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

fn range_workload(n: usize) -> AllRangeWorkload {
    AllRangeWorkload::new(Domain::one_dim(n))
}

/// A cache hit returns the identical strategy object that a fresh selection
/// produced, and the fingerprint is deterministic across separately
/// constructed (but semantically equal) workloads.
#[test]
fn cache_hit_returns_identical_strategy() {
    let engine = Engine::new(PrivacyParams::paper_default());
    let w1 = range_workload(32);
    let w2 = range_workload(32); // separately constructed, same workload

    let (fresh, fp1, hit1) = engine.select(&w1).unwrap();
    assert!(!hit1);
    let (cached, fp2, hit2) = engine.select(&w2).unwrap();
    assert!(hit2, "semantically equal workload must hit the cache");
    assert_eq!(fp1, fp2);
    assert_eq!(fp1, workload_fingerprint(&w1));
    assert!(
        Arc::ptr_eq(&fresh, &cached),
        "cache returns the same Arc, not a re-selection"
    );
    assert_eq!(engine.stats().selections, 1);

    // The cached strategy answers with exactly the fresh strategy's error.
    let p = PrivacyParams::paper_default();
    let e1 = rms_workload_error(&w1.gram(), w1.query_count(), &fresh, &p).unwrap();
    let e2 = rms_workload_error(&w2.gram(), w2.query_count(), &cached, &p).unwrap();
    assert!(approx_eq(e1, e2, 1e-15));
}

/// Repeated answers on the same workload never re-run selection; answers on a
/// new workload do.
#[test]
fn answer_skips_selection_on_repeat() {
    let engine = Engine::new(PrivacyParams::paper_default());
    let w = range_workload(16);
    let x: Vec<f64> = (0..16).map(|i| 3.0 * i as f64 + 1.0).collect();
    let mut rng = StdRng::seed_from_u64(2);
    for i in 0..5 {
        let ans = engine.answer(&w, &x, &mut rng).unwrap();
        assert_eq!(ans.cache_hit, i > 0);
    }
    assert_eq!(engine.stats().selections, 1);
    assert_eq!(engine.stats().cache_hits, 4);

    let other = range_workload(8);
    engine.answer(&other, &[1.0; 8], &mut rng).unwrap();
    assert_eq!(engine.stats().selections, 2);
}

/// Session budget arithmetic under repeated answers, and `BudgetExhausted`
/// surfacing with the exact remaining budget.
#[test]
fn session_budget_accounting() {
    let p = PrivacyParams::new(0.5, 1e-4);
    let engine = Engine::builder().privacy(p).build().unwrap();
    let w = range_workload(16);
    let x: Vec<f64> = vec![10.0; 16];
    let mut rng = StdRng::seed_from_u64(3);

    // Budget for exactly three answers at (0.5, 1e-4).
    let mut session = engine.session(PrivacyBudget::new(1.5, 3e-4));
    for i in 1..=3 {
        let ans: EngineAnswer = session.answer(&w, &x, &mut rng).unwrap();
        assert_eq!(ans.answers.len(), w.query_count());
        assert!(approx_eq(
            session.ledger().spent().epsilon,
            0.5 * i as f64,
            1e-12
        ));
        assert!(approx_eq(
            session.ledger().spent().delta,
            1e-4 * i as f64,
            1e-15
        ));
    }
    assert!(approx_eq(session.remaining().epsilon, 0.0, 1e-9));

    // The fourth answer fails closed with the typed error...
    let err = session.answer(&w, &x, &mut rng).unwrap_err();
    match err {
        MechanismError::BudgetExhausted {
            requested_epsilon,
            remaining_epsilon,
            ..
        } => {
            assert!(approx_eq(requested_epsilon, 0.5, 1e-12));
            assert!(remaining_epsilon < 1e-6);
        }
        other => panic!("expected BudgetExhausted, got {other}"),
    }
    // ...and spends nothing.
    assert_eq!(session.ledger().charges().len(), 3);

    // Per-call privacy override: a smaller charge still fits a fresh session.
    let mut small = engine.session(PrivacyBudget::new(0.2, 1e-4));
    assert!(small
        .answer_with_privacy(&w, PrivacyParams::new(0.2, 1e-5), &x, &mut rng)
        .is_ok());
    assert!(small
        .answer_with_privacy(&w, PrivacyParams::new(0.2, 1e-5), &x, &mut rng)
        .is_err());
}

/// Gaussian and Laplace backends both satisfy the Prop. 4 predicted-error
/// check (regression for the unified answer path): Monte-Carlo RMS error over
/// repeated runs matches the analytic prediction of each backend's formula.
#[test]
fn both_backends_match_predicted_error() {
    let w = range_workload(8);
    let x: Vec<f64> = vec![40.0, 10.0, 25.0, 5.0, 60.0, 15.0, 30.0, 20.0];
    let truth = w.evaluate(&x);
    let gram = w.gram();
    let m = w.query_count();

    // Fix the strategy (hierarchical) so the analytic reference is external
    // to the engine: Prop. 4 for Gaussian, the Sec. 3.5 L1 form for Laplace.
    let strategy = binary_hierarchical_1d(8);
    let gaussian_p = PrivacyParams::new(1.0, 1e-4);
    let laplace_p = PrivacyParams::pure(1.0);
    let reference_gaussian = rms_workload_error(&gram, m, &strategy, &gaussian_p).unwrap();
    let reference_laplace = rms_workload_error_l1(&gram, m, &strategy, &laplace_p).unwrap();

    let gaussian_engine = Engine::builder()
        .privacy(gaussian_p)
        .selector(FixedStrategySelector::new(strategy.clone()))
        .backend(GaussianBackend)
        .build()
        .unwrap();
    let laplace_engine = Engine::builder()
        .privacy(laplace_p)
        .selector(FixedStrategySelector::new(strategy))
        .backend(LaplaceBackend)
        .build()
        .unwrap();

    for (engine, reference, seed) in [
        (&gaussian_engine, reference_gaussian, 7u64),
        (&laplace_engine, reference_laplace, 8u64),
    ] {
        let mut rng = StdRng::seed_from_u64(seed);
        let trials = 250;
        let mut sq = 0.0;
        let mut predicted = 0.0;
        for _ in 0..trials {
            let ans = engine.answer(&w, &x, &mut rng).unwrap();
            predicted = ans.expected_rms_error;
            for (a, t) in ans.answers.iter().zip(truth.iter()) {
                sq += (a - t).powi(2);
            }
        }
        assert!(
            approx_eq(predicted, reference, 1e-9),
            "{}: engine prediction {predicted} vs analytic reference {reference}",
            engine.backend().name()
        );
        let empirical = (sq / (trials as f64 * truth.len() as f64)).sqrt();
        assert!(
            (empirical - predicted).abs() / predicted < 0.12,
            "{}: empirical {empirical} vs predicted {predicted}",
            engine.backend().name()
        );
    }
}

/// The engine supports at least three selector families through the same
/// `answer` call (acceptance criterion): Eigen-Design, a weighted design-set
/// basis, and the pure-DP L1 weighting.
#[test]
fn three_selector_families_answer_through_one_call() {
    let w = range_workload(16);
    let x: Vec<f64> = (0..16).map(|i| 5.0 + i as f64).collect();
    let engines = [
        Engine::builder()
            .privacy(PrivacyParams::paper_default())
            .build()
            .unwrap(), // eigen-design (default selector)
        Engine::builder()
            .privacy(PrivacyParams::paper_default())
            .selector(DesignSetSelector::wavelet())
            .build()
            .unwrap(),
        Engine::builder()
            .privacy(PrivacyParams::pure(0.5))
            .selector(PureDpSelector::wavelet())
            .backend(LaplaceBackend)
            .build()
            .unwrap(),
    ];
    for engine in &engines {
        let mut rng = StdRng::seed_from_u64(9);
        let ans = engine.answer(&w, &x, &mut rng).unwrap();
        assert_eq!(ans.answers.len(), w.query_count());
        assert!(ans.expected_rms_error.is_finite() && ans.expected_rms_error > 0.0);
        // Second answer is served from cache in every configuration.
        assert!(engine.answer(&w, &x, &mut rng).unwrap().cache_hit);
    }
}

/// N threads hammering one `Arc<Engine>` over a mixed workload set: stats
/// stay coherent, single-flight runs the selector exactly once per distinct
/// fingerprint, and every thread receives byte-identical strategies.
#[test]
fn concurrent_serving_is_single_flight_with_coherent_stats() {
    const THREADS: usize = 8;
    const ROUNDS: usize = 4;
    // Mixed working set: four distinct workloads (four distinct fingerprints)
    // that comfortably fit the cache, so no eviction can force re-selection.
    let sizes: &[usize] = &[8, 12, 16, 24];
    let engine = Arc::new(
        Engine::builder()
            .privacy(PrivacyParams::paper_default())
            .cache_capacity(64)
            .build()
            .unwrap(),
    );

    let barrier = Arc::new(std::sync::Barrier::new(THREADS));
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let engine = Arc::clone(&engine);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                // All threads start at once so cold misses on the same
                // fingerprint really race (the single-flight case).
                barrier.wait();
                let mut rng = StdRng::seed_from_u64(100 + t as u64);
                let mut seen = Vec::new();
                for _ in 0..ROUNDS {
                    for &n in sizes {
                        let w = range_workload(n);
                        let x: Vec<f64> = (0..n).map(|i| 10.0 + i as f64).collect();
                        let ans = engine.answer(&w, &x, &mut rng).unwrap();
                        assert_eq!(ans.answers.len(), w.query_count());
                        seen.push((ans.fingerprint, ans.strategy));
                    }
                }
                seen
            })
        })
        .collect();
    let per_thread: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();

    // Single-flight: one selection per distinct fingerprint, regardless of
    // thread count; every other lookup was served from cache or a shared
    // in-flight selection.
    let stats = engine.stats();
    assert_eq!(
        stats.selections,
        sizes.len() as u64,
        "single-flight must select once per distinct workload fingerprint"
    );
    assert!(
        stats.selections <= stats.cache_misses,
        "selections {} > misses {}",
        stats.selections,
        stats.cache_misses
    );
    let total_calls = (THREADS * ROUNDS * sizes.len()) as u64;
    assert_eq!(stats.cache_hits + stats.cache_misses, total_calls);

    // Byte-identical strategies across threads: group by fingerprint and
    // compare the exact matrix bits against the first thread's strategy.
    let reference: std::collections::HashMap<_, _> = per_thread[0]
        .iter()
        .map(|(fp, s)| (*fp, Arc::clone(s)))
        .collect();
    for seen in &per_thread {
        for (fp, strategy) in seen {
            let reference = &reference[fp];
            assert!(
                Arc::ptr_eq(strategy, reference),
                "cache must hand every thread the same strategy object"
            );
            let a = strategy.matrix().unwrap().as_slice();
            let b = reference.matrix().unwrap().as_slice();
            assert_eq!(a.len(), b.len());
            assert!(
                a.iter()
                    .zip(b.iter())
                    .all(|(x, y)| x.to_bits() == y.to_bits()),
                "strategies must be byte-identical across threads"
            );
        }
    }
}

/// LRU keeps a hot workload resident under a churning cold stream that the
/// old FIFO policy (eviction in insertion order, blind to use) evicted it
/// from: with capacity 4 and >4 cold insertions, FIFO would have dropped the
/// hot entry, forcing a re-selection.
#[test]
fn lru_keeps_hot_workload_resident_under_cold_churn() {
    let engine = Engine::builder()
        .privacy(PrivacyParams::paper_default())
        .cache_capacity(4)
        .cache_shards(1) // one shard ⇒ globally exact LRU order
        .build()
        .unwrap();
    let hot = range_workload(16);
    let (_, _, hit) = engine.select(&hot).unwrap();
    assert!(!hit);

    let cold_sizes: Vec<usize> = (2..=32).filter(|&n| n != 16).collect();
    assert!(
        cold_sizes.len() > 4 * 4,
        "stream must overflow capacity often"
    );
    for &n in &cold_sizes {
        // Serve the hot workload between cold ones: under LRU this refreshes
        // its recency, so the cold stream evicts other cold entries instead.
        assert!(
            engine.select(&hot).unwrap().2,
            "hot workload evicted after cold size {n}"
        );
        engine.select(&range_workload(n)).unwrap();
    }
    assert!(engine.select(&hot).unwrap().2);
    // The hot workload was selected exactly once in its lifetime.
    assert_eq!(
        engine.stats().selections,
        1 + cold_sizes.len() as u64,
        "hot workload must never be re-selected"
    );
}

/// Owned sessions move into threads, charge their own ledgers, and share the
/// engine's strategy cache through the `Arc`.
#[test]
fn owned_sessions_serve_concurrently_with_independent_budgets() {
    const THREADS: usize = 4;
    let p = PrivacyParams::new(0.5, 1e-4);
    let engine = Arc::new(Engine::builder().privacy(p).build().unwrap());
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let mut session: OwnedSession = engine.owned_session(PrivacyBudget::new(1.0, 1e-3));
            std::thread::spawn(move || {
                let mut rng = StdRng::seed_from_u64(50 + t as u64);
                let w = range_workload(16);
                let x = vec![7.0; 16];
                session.answer(&w, &x, &mut rng).unwrap();
                session.answer(&w, &x, &mut rng).unwrap();
                // Each session's budget is its own: two answers exhaust ε.
                assert!(matches!(
                    session.answer(&w, &x, &mut rng).unwrap_err(),
                    MechanismError::BudgetExhausted { .. }
                ));
                session.ledger().charges().len()
            })
        })
        .collect();
    for h in handles {
        assert_eq!(h.join().unwrap(), 2);
    }
    // One workload, many sessions and threads: selection still ran once.
    assert_eq!(engine.stats().selections, 1);
}

/// Batched answering serves many databases under one workload for one cache
/// lookup, and sessions charge the batch per vector.
#[test]
fn answer_batch_amortises_and_sessions_charge_per_vector() {
    let engine = Engine::new(PrivacyParams::paper_default());
    let w = range_workload(16);
    let xs: Vec<Vec<f64>> = (0..8)
        .map(|k| (0..16).map(|i| (k + i) as f64).collect())
        .collect();
    let mut rng = StdRng::seed_from_u64(31);
    let answers = engine.answer_batch(&w, &xs, &mut rng).unwrap();
    assert_eq!(answers.len(), xs.len());
    assert_eq!(engine.stats().cache_hits + engine.stats().cache_misses, 1);
    assert_eq!(engine.stats().selections, 1);
    for ans in &answers {
        assert!(Arc::ptr_eq(&ans.strategy, &answers[0].strategy));
    }

    // Session batch: budget for 8 vectors at the engine's default ε = 0.5.
    let mut session = engine.session(PrivacyBudget::new(4.0, 1e-2));
    let batched = session.answer_batch(&w, &xs, &mut rng).unwrap();
    assert_eq!(batched.len(), 8);
    assert_eq!(session.ledger().charges().len(), 8);
    assert!(approx_eq(session.ledger().spent().epsilon, 4.0, 1e-9));
    // A second batch does not fit and spends nothing (all-or-nothing).
    assert!(session.answer_batch(&w, &xs, &mut rng).is_err());
    assert_eq!(session.ledger().charges().len(), 8);
}

/// The vectorised batch path is an implementation detail: answering a batch
/// through the facade is byte-identical to answering its vectors one by one
/// on the same seeded rng, and the empty batch is a charge-free no-op.
#[test]
fn batched_answers_equal_sequential_answers_through_facade() {
    let w = range_workload(16);
    let xs: Vec<Vec<f64>> = (0..5)
        .map(|k| (0..16).map(|i| ((k * 7 + i * 3) % 23) as f64).collect())
        .collect();
    let engine = Engine::new(PrivacyParams::paper_default());
    engine.select(&w).unwrap();

    let mut rng = StdRng::seed_from_u64(77);
    let batched = engine.answer_batch(&w, &xs, &mut rng).unwrap();
    let mut rng = StdRng::seed_from_u64(77);
    for (k, x) in xs.iter().enumerate() {
        let single = engine.answer(&w, x, &mut rng).unwrap();
        for (a, b) in single.answers.iter().zip(batched[k].answers.iter()) {
            assert_eq!(a.to_bits(), b.to_bits(), "vector {k}");
        }
    }

    // Empty batch: succeeds, answers nothing, charges nothing.
    let mut session = engine.session(PrivacyBudget::new(1.0, 1e-3));
    let none: &[Vec<f64>] = &[];
    assert!(session.answer_batch(&w, none, &mut rng).unwrap().is_empty());
    assert_eq!(session.ledger().charges().len(), 0);
    // K = 1 batch charges exactly once.
    session.answer_batch(&w, &xs[..1], &mut rng).unwrap();
    assert_eq!(session.ledger().charges().len(), 1);
}

/// The `low_rank` builder knob: rank 0 fails at build time, the rank is
/// visible through the accessor, a truncating rank mixes the plan
/// fingerprint and yields a `LowRank` plan, sessions answer (and charge)
/// through it, and the per-kind stats counters split dense from low-rank.
#[test]
fn low_rank_knob_dispatches_and_counts_per_plan_kind() {
    use adaptive_dp::core::PlanKind;

    assert!(matches!(
        Engine::builder()
            .privacy(PrivacyParams::paper_default())
            .low_rank(0)
            .build(),
        Err(MechanismError::InvalidArgument(_))
    ));

    let engine = Engine::builder()
        .privacy(PrivacyParams::paper_default())
        .low_rank(8)
        .build()
        .unwrap();
    assert_eq!(engine.low_rank_rank(), Some(8));

    let w = range_workload(24);
    let x: Vec<f64> = (0..24).map(|i| 20.0 + i as f64).collect();
    let mut rng = StdRng::seed_from_u64(13);
    let ans = engine.answer(&w, &x, &mut rng).unwrap();
    assert_eq!(ans.answers.len(), w.query_count());
    let (plan, fp, hit) = engine.select_plan_for(&w).unwrap();
    assert!(hit, "plan cached by the answer call");
    assert_eq!(plan.kind(), PlanKind::LowRank);
    assert_ne!(
        fp,
        workload_fingerprint(&w),
        "a truncating rank must mix the plan fingerprint"
    );
    assert_eq!(engine.stats().low_rank_selections, 1);
    assert_eq!(engine.stats().dense_selections, 0);
    assert_eq!(engine.stats().selections, 1);

    // Sessions answer (and charge) through the same low-rank plan.
    let mut session = engine.session(PrivacyBudget::new(1.0, 1e-3));
    assert!(session.answer(&w, &x, &mut rng).is_ok());
    assert_eq!(session.ledger().charges().len(), 1);

    // A workload the rank covers entirely (r ≥ n) falls back to the dense
    // selector, and the per-kind counters keep the split.
    let small = range_workload(8);
    engine.answer(&small, &[5.0; 8], &mut rng).unwrap();
    assert_eq!(engine.stats().dense_selections, 1);
    assert_eq!(engine.stats().low_rank_selections, 1);
    assert_eq!(engine.stats().selections, 2);
}

/// `MechanismError` is non-exhaustive and the new variants format usefully.
/// (`BudgetExhausted` is itself non-exhaustive, so it can only be obtained
/// from a ledger, never constructed by downstream code.)
#[test]
fn error_variants_display() {
    use adaptive_dp::core::engine::BudgetLedger;
    let mut ledger = BudgetLedger::new(PrivacyBudget::new(0.1, 1e-4));
    let e = ledger
        .try_charge(&PrivacyParams::new(0.5, 1e-4))
        .unwrap_err();
    let msg = e.to_string();
    assert!(
        msg.contains("budget exhausted") && msg.contains("0.5"),
        "{msg}"
    );
    let e = Engine::builder()
        .privacy(PrivacyParams::pure(0.5))
        .backend(GaussianBackend)
        .build()
        .unwrap_err();
    assert!(e.to_string().contains("incompatible noise backend"));
}
