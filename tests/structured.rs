//! Workspace-level cross-validation of the matrix-free structured path
//! against the dense semantics it replaces.
//!
//! The contract: a structured operator (run-length strategy rows, interval
//! workload rows) is *the same matrix* as its materialised form — not
//! approximately, but bit for bit, because both sides accumulate in the
//! dense width-1 kernel's order.  That makes the whole answering pipeline
//! (noise, CG reconstruction, workload evaluation) bit-identical whichever
//! representation feeds it, which is what lets the engine switch to the
//! matrix-free path at large n without changing a single served answer at
//! small n.

use adaptive_dp::core::engine::{Engine, PrivacyBudget};
use adaptive_dp::core::PrivacyParams;
use adaptive_dp::linalg::{ExplicitOperator, LinearOperator};
use adaptive_dp::opt::{cg_normal_equations, CgOptions};
use adaptive_dp::strategies::operator::{haar_strategy, hierarchical_strategy_structured};
use adaptive_dp::workload::{RangeQueryWorkload, StructuredWorkload, Workload};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

fn assert_bits_eq(context: &str, got: &[f64], expect: &[f64]) {
    assert_eq!(got.len(), expect.len(), "{context}: length mismatch");
    for (i, (g, e)) in got.iter().zip(expect.iter()).enumerate() {
        assert_eq!(
            g.to_bits(),
            e.to_bits(),
            "{context}: bit mismatch at index {i} ({g} vs {e})"
        );
    }
}

/// Deterministic probe vector with varied magnitudes and signs.
fn probe(len: usize, salt: u64) -> Vec<f64> {
    (0..len)
        .map(|i| {
            let k = (i as u64)
                .wrapping_mul(6364136223846793005)
                .wrapping_add(salt);
            ((k % 2003) as f64 - 1001.0) / 7.0
        })
        .collect()
}

#[test]
fn structured_operators_match_their_dense_form_bitwise() {
    let cases: Vec<(&str, Arc<dyn LinearOperator>)> = vec![
        ("haar/16", haar_strategy(16).operator().clone()),
        ("haar/128", haar_strategy(128).operator().clone()),
        (
            "hierarchical/48x2",
            hierarchical_strategy_structured(48, 2).operator().clone(),
        ),
        (
            "hierarchical/100x4",
            hierarchical_strategy_structured(100, 4).operator().clone(),
        ),
        ("prefixes/64", RangeQueryWorkload::prefixes(64).operator()),
        (
            "intervals/32",
            RangeQueryWorkload::from_intervals(
                32,
                vec![(0, 31), (5, 20), (0, 0), (31, 31), (7, 7), (2, 29), (5, 20)],
            )
            .operator(),
        ),
    ];
    for (name, op) in cases {
        let dense = ExplicitOperator::new(
            op.materialize()
                .unwrap_or_else(|| panic!("{name}: small operators materialise")),
        );
        assert_eq!(op.dims(), dense.dims(), "{name}: dims");
        let (rows, n) = op.dims();
        for salt in [3u64, 77, 991] {
            let x = probe(n, salt);
            assert_bits_eq(&format!("{name}: apply"), &op.apply(&x), &dense.apply(&x));
            let y = probe(rows, salt ^ 0xABCD);
            assert_bits_eq(
                &format!("{name}: apply_transpose"),
                &op.apply_transpose(&y),
                &dense.apply_transpose(&y),
            );
        }
        assert_bits_eq(
            &format!("{name}: gram_diag"),
            &op.gram_diag()
                .unwrap_or_else(|| panic!("{name}: gram_diag")),
            &dense.gram_diag().expect("dense gram_diag"),
        );
    }
}

#[test]
fn structured_engine_matches_the_dense_adapter_on_the_same_rng_stream() {
    // The acceptance-criteria cross-check: at n <= 512 the engine's
    // structured answer must be bit-identical to the same pipeline fed by
    // the materialised strategy operator, on the same rng stream.
    for n in [64usize, 512] {
        let workload = RangeQueryWorkload::prefixes(n);
        let engine = Engine::new(PrivacyParams::paper_default());
        let x = probe(n, 2012);
        let mut rng = StdRng::seed_from_u64(0xD0 + n as u64);
        let structured = engine
            .answer_structured(&workload, &x, &mut rng)
            .expect("structured answer");

        // The dense twin: same strategy (cached selection), same scale,
        // same seed, dense matvecs end to end.
        let (strategy, _, hit) = engine
            .select_structured(&workload.descriptor())
            .expect("selection is cached");
        assert!(hit, "answering populated the structured cache");
        let dense = ExplicitOperator::new(
            strategy
                .operator()
                .materialize()
                .expect("n <= 512 materialises"),
        );
        let sens = engine
            .backend()
            .sensitivity_from_norms(strategy.l2_sensitivity(), strategy.l1_sensitivity());
        let scale = engine.backend().noise_scale(engine.privacy(), sens);
        let mut rng = StdRng::seed_from_u64(0xD0 + n as u64);
        let mut y = dense.apply(&x);
        // mm-lint: allow(charge-before-noise): cross-validation draws the same noise stream as the accounted engine call above, on the same privacy parameters
        let noise = engine.backend().sample(&mut rng, scale, dense.dims().0);
        for (v, nz) in y.iter_mut().zip(noise.iter()) {
            *v += *nz;
        }
        let estimate = cg_normal_equations(
            |v| dense.apply(v),
            |w| dense.apply_transpose(w),
            &y,
            &CgOptions::default(),
        )
        .expect("dense CG converges");
        assert_bits_eq(&format!("n={n}: estimate"), &structured.estimate, &estimate);
        assert_bits_eq(
            &format!("n={n}: answers"),
            &structured.answers,
            &workload.evaluate(&estimate),
        );
    }
}

#[test]
fn accounted_structured_answers_match_the_unaccounted_path_bitwise() {
    // Accounting wraps the pipeline without touching the rng stream: a
    // budgeted session must serve the very bits the bare engine does.
    let n = 256;
    let workload = RangeQueryWorkload::prefixes(n);
    let engine = Arc::new(
        Engine::builder()
            .privacy(PrivacyParams::paper_default())
            .build()
            .expect("engine builds"),
    );
    let x = probe(n, 77);
    let mut rng = StdRng::seed_from_u64(99);
    let bare = engine
        .answer_structured(&workload, &x, &mut rng)
        .expect("bare answer");
    let mut session = engine.session(PrivacyBudget::new(10.0, 1e-2));
    let mut rng = StdRng::seed_from_u64(99);
    let accounted = session
        .answer_structured(&workload, &x, &mut rng)
        .expect("budgeted answer");
    assert_bits_eq("answers", &accounted.answers, &bare.answers);
    assert_bits_eq("estimate", &accounted.estimate, &bare.estimate);
    assert_eq!(accounted.fingerprint, bare.fingerprint);
}

#[test]
fn structured_selection_is_deterministic_across_engines_and_sizes() {
    // Selection is data-independent and stateless: two engines (and a bare
    // selector) must agree on descriptor, fingerprint, and sensitivities
    // for every size, power of two or not.
    for n in [17usize, 64, 100, 512, 4096] {
        let w = RangeQueryWorkload::prefixes(n);
        let a = Engine::new(PrivacyParams::paper_default());
        let b = Engine::new(PrivacyParams::paper_default());
        let (sa, fa, _) = a.select_structured(&w.descriptor()).expect("selects");
        let (sb, fb, _) = b.select_structured(&w.descriptor()).expect("selects");
        assert_eq!(fa, fb, "n={n}: fingerprints diverge");
        assert_eq!(sa.descriptor(), sb.descriptor(), "n={n}: descriptors");
        assert_eq!(
            sa.l2_sensitivity().to_bits(),
            sb.l2_sensitivity().to_bits(),
            "n={n}: L2 sensitivity"
        );
        assert_eq!(
            sa.l1_sensitivity().to_bits(),
            sb.l1_sensitivity().to_bits(),
            "n={n}: L1 sensitivity"
        );
    }
}

#[test]
fn structured_error_prediction_is_calibrated_at_workspace_level() {
    // The closed-form expected rms error (Haar trace) must be a statistical
    // fact about the served answers, not just a formula: over repeated
    // draws, the measured rms converges to the prediction.
    let n = 128;
    let workload = RangeQueryWorkload::prefixes(n);
    let engine = Engine::new(PrivacyParams::paper_default());
    let x = probe(n, 5);
    let truth: Vec<f64> = {
        let mut acc = 0.0;
        x.iter()
            .map(|v| {
                acc += v;
                acc
            })
            .collect()
    };
    let mut rng = StdRng::seed_from_u64(4242);
    let mut predicted = 0.0;
    let mut total_sq = 0.0;
    let trials = 200;
    for _ in 0..trials {
        let ans = engine
            .answer_structured(&workload, &x, &mut rng)
            .expect("answers");
        predicted = ans.expected_rms_error.expect("Haar has a closed form");
        total_sq += ans
            .answers
            .iter()
            .zip(truth.iter())
            .map(|(a, t)| (a - t) * (a - t))
            .sum::<f64>();
    }
    let measured = (total_sq / (trials as f64 * n as f64)).sqrt();
    let ratio = measured / predicted;
    assert!(
        (0.9..=1.1).contains(&ratio),
        "measured rms {measured} vs predicted {predicted} (ratio {ratio})"
    );
}
