//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment has no access to a crate registry, so this workspace
//! vendors the (small) subset of the `rand` 0.8 API it actually uses:
//!
//! * [`RngCore`] / [`Rng`] with [`Rng::gen_range`] over float and integer
//!   ranges;
//! * [`SeedableRng::seed_from_u64`];
//! * [`rngs::StdRng`], implemented as xoshiro256++ seeded through SplitMix64 —
//!   a deterministic, statistically strong generator (it passes the workspace's
//!   moment/variance tests with the same tolerances used against upstream
//!   `rand`).
//!
//! The traits keep upstream's shape (`Rng` is blanket-implemented for every
//! `RngCore`, including unsized ones) so that swapping the real crate back in
//! is a one-line manifest change.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words.  Object safe: mechanism code that needs
/// dynamic dispatch can take `&mut dyn RngCore`.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing random value generation, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a uniform value from the given range (half-open or inclusive).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Samples a uniform `f64` in `[0, 1)`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability must lie in [0, 1]");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types samplable uniformly from their "standard" distribution (`[0,1)` for
/// floats).
pub trait Standard: Sized {
    /// Samples one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

/// A range that can produce a uniform sample.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Converts 64 random bits into a uniform `f64` in `[0, 1)` (53-bit mantissa).
#[inline]
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty f64 range");
        let u = unit_f64(rng.next_u64());
        let v = self.start + u * (self.end - self.start);
        // Guard against rounding up to the excluded endpoint.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "empty f32 range");
        let u = unit_f64(rng.next_u64());
        let v = (self.start as f64 + u * (self.end as f64 - self.start as f64)) as f32;
        // Guard in f32: the cast itself can round up to the excluded endpoint.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

/// Uniform integer in `[0, span)` by 128-bit multiply-shift (Lemire) with a
/// rejection pass, so the result is exactly uniform.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (span as u128);
        let lo = m as u64;
        if lo >= span {
            return (m >> 64) as u64;
        }
        // Rejection zone: accept unless lo < 2^64 mod span.
        let threshold = span.wrapping_neg() % span;
        if lo >= threshold {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty integer range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty inclusive range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_below(rng, span + 1) as $t)
            }
        }
    )*};
}

int_sample_range!(usize, u64, u32, i64, i32);

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(state: u64) -> Self;
}

/// Concrete generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++,
    /// seeded through SplitMix64 exactly as `rand_xoshiro` does.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let mut s = [0u64; 4];
            for w in s.iter_mut() {
                *w = splitmix64(&mut state);
            }
            // All-zero state is the one forbidden state of xoshiro; SplitMix64
            // cannot produce it from any seed, but guard anyway.
            if s.iter().all(|&w| w == 0) {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn float_range_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
            assert!(v > 0.0 && v < 1.0);
            let w: f64 = rng.gen_range(-0.5..0.5);
            assert!((-0.5..0.5).contains(&w));
        }
    }

    #[test]
    fn float_range_mean() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen_range(0.0..1.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn integer_ranges_cover_uniformly() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0usize; 6];
        for _ in 0..60_000 {
            counts[rng.gen_range(0usize..=5)] += 1;
        }
        for &c in &counts {
            assert!((c as f64 - 10_000.0).abs() < 500.0, "counts {counts:?}");
        }
        // Degenerate inclusive range.
        assert_eq!(rng.gen_range(7usize..=7), 7);
    }

    #[test]
    fn unsized_rng_usable() {
        fn takes_dyn(rng: &mut dyn super::RngCore) -> f64 {
            rng.gen_range(0.0..1.0)
        }
        let mut rng = StdRng::seed_from_u64(4);
        let v = takes_dyn(&mut rng);
        assert!((0.0..1.0).contains(&v));
    }
}
