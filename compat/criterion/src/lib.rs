//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The build environment has no crate registry, so this crate provides the
//! subset of criterion's API the workspace benches use — `criterion_group!`,
//! `criterion_main!`, [`Criterion::benchmark_group`], `bench_function`,
//! `bench_with_input`, [`Bencher::iter`], [`BenchmarkId`] and [`black_box`] —
//! backed by a simple wall-clock sampler: each benchmark is warmed up once,
//! then timed over `sample_size` samples, and the min / mean / max per-sample
//! time is printed in a criterion-like line.  Swapping the real crate back in
//! is a one-line manifest change.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Benchmark identifier (`group/function/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function.into(), parameter),
        }
    }

    /// An id made of a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Timing loop handed to benchmark closures.
pub struct Bencher {
    samples: usize,
    results: Vec<Duration>,
}

impl Bencher {
    /// Calls `routine` repeatedly, recording one duration per sample.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // One warm-up call (not recorded).
        black_box(routine());
        self.results.clear();
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            self.results.push(start.elapsed());
        }
    }
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.3} s", nanos as f64 / 1e9)
    }
}

/// Summary statistics of one benchmark's recorded samples.
///
/// Shim extension: the real criterion reports through its own output files,
/// so benches that consume these stats programmatically (e.g. to emit a
/// machine-readable perf report) must be adapted when swapping the real
/// crate back in.
#[derive(Debug, Clone, Copy, Default)]
pub struct SampleStats {
    /// Fastest recorded sample.
    pub min: Duration,
    /// Mean over all recorded samples.
    pub mean: Duration,
    /// Slowest recorded sample.
    pub max: Duration,
    /// Number of recorded samples.
    pub samples: usize,
}

impl SampleStats {
    fn from_results(results: &[Duration]) -> Self {
        if results.is_empty() {
            return SampleStats::default();
        }
        SampleStats {
            min: results.iter().min().copied().unwrap_or_default(),
            mean: results.iter().sum::<Duration>() / results.len() as u32,
            max: results.iter().max().copied().unwrap_or_default(),
            samples: results.len(),
        }
    }

    /// The fastest sample in nanoseconds — the least noisy per-op figure for
    /// coarse regression gates.
    pub fn min_ns(&self) -> f64 {
        self.min.as_nanos() as f64
    }
}

fn report(name: &str, results: &[Duration]) {
    if results.is_empty() {
        println!("{name:<48} (no samples)");
        return;
    }
    let stats = SampleStats::from_results(results);
    println!(
        "{name:<48} time: [{} {} {}]  ({} samples)",
        fmt_duration(stats.min),
        fmt_duration(stats.mean),
        fmt_duration(stats.max),
        stats.samples
    );
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'c> {
    name: String,
    sample_size: usize,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the measurement time; accepted for API compatibility (the shim
    /// samples a fixed count instead).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    fn run<F: FnMut(&mut Bencher)>(&mut self, id: String, mut f: F) -> SampleStats {
        let mut b = Bencher {
            samples: self.sample_size,
            results: Vec::new(),
        };
        f(&mut b);
        report(&format!("{}/{id}", self.name), &b.results);
        SampleStats::from_results(&b.results)
    }

    /// Benchmarks a closure under the given name.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, f: F) {
        self.run(id.to_string(), f);
    }

    /// Benchmarks a closure that receives a shared input.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) {
        self.run(id.to_string(), |b| f(b, input));
    }

    /// Like [`BenchmarkGroup::bench_function`], additionally returning the
    /// recorded [`SampleStats`] (shim extension, see `SampleStats`).
    pub fn bench_function_stats<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Display,
        f: F,
    ) -> SampleStats {
        self.run(id.to_string(), f)
    }

    /// Ends the group (no-op in the shim).
    pub fn finish(self) {}
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== {name} ==");
        BenchmarkGroup {
            name,
            sample_size: 10,
            _criterion: self,
        }
    }

    /// Benchmarks a closure outside a group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, mut f: F) {
        let mut b = Bencher {
            samples: 10,
            results: Vec::new(),
        };
        f(&mut b);
        report(&id.to_string(), &b.results);
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench `main` function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        let mut runs = 0usize;
        group.bench_function("f", |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        group.finish();
        // 1 warm-up + 3 samples.
        assert_eq!(runs, 4);
    }

    #[test]
    fn id_formats() {
        assert_eq!(BenchmarkId::from_parameter(64).to_string(), "64");
        assert_eq!(BenchmarkId::new("f", 8).to_string(), "f/8");
    }

    #[test]
    fn stats_summarise_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(4);
        let stats = group.bench_function_stats("f", |b| b.iter(|| std::hint::black_box(1 + 1)));
        group.finish();
        assert_eq!(stats.samples, 4);
        assert!(stats.min <= stats.mean && stats.mean <= stats.max);
        assert!(stats.min_ns() >= 0.0);
        let empty = SampleStats::from_results(&[]);
        assert_eq!(empty.samples, 0);
    }
}
